#include "common/packet_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

namespace jqos {
namespace {

// The pool must undercut the allocator it replaces, and glibc's tcache fast
// path is a handful of nanoseconds -- a pthread mutex round per freelist op
// gives most of that back. Each lane owns its pool, so the lock is taken
// contended only by rare cross-lane returns: a test-and-set spinlock makes
// the common uncontended round two plain atomic ops.
class SpinLock {
 public:
  void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace

// Single-slot thread-local stash: the steady-state teardown sequence is
// deleter (packet comes home) immediately followed by control-block
// deallocate, and the next acquire on the same thread wants exactly that
// pair back. Parking the pair here lets the common cycle run with zero
// atomics and zero lock rounds; the locked core freelist below is the
// fallback for bursts, coded packets (key salvage), cross-thread returns,
// and the stash's own eviction/drain. A stashed packet still counts as
// outstanding/live in its core, so the core cannot die underneath it; the
// stash drains to the core on eviction, on accessor reads, and at thread
// exit.
//
// Lifetime rule: `core` is dereferenced ONLY while the stash holds storage
// (pkt or block). Parked storage is still counted in the core's `live`, so
// the core cannot be deleted underneath it; an empty stash may keep a stale
// `core` pointer from a destroyed pool, which is compared but never
// followed. (Stash-hit reuse stats therefore live in the facade, not here.)
namespace {
struct TlsStash {
  PacketPool::Core* core = nullptr;
  Packet* pkt = nullptr;
  void* block = nullptr;
  std::size_t block_size = 0;

  bool complete() const { return pkt != nullptr && block != nullptr; }
  ~TlsStash();
};
thread_local TlsStash tls_stash;

// Returns the stash's contents to its core (full accounting) and empties
// it. Defined after Core.
void drain_stash(TlsStash& s);
}  // namespace

// All freelists share one spinlock and one byte budget. The lock is
// effectively uncontended: each lane owns its pool, and only rare cross-lane
// returns (a packet released by a peer lane's freelist walk) take a foreign
// lock.
struct PacketPool::Core {
  explicit Core(Limits l) : limits(l) {}
  ~Core() {
    for (Packet* p : free_packets) delete p;
    for (void* b : free_blocks) ::operator delete(b);
  }

  // One acquire's worth of recycled storage, popped under a single lock
  // round: the packet plus (when available) the control block the wrapping
  // shared_ptr is about to ask for. The block is prefetched only alongside a
  // reused packet, so a throwing `new Packet()` cannot strand it.
  struct Taken {
    Packet* pkt = nullptr;
    void* block = nullptr;
    std::size_t block_size = 0;
    bool from_stash = false;  // Counted by the facade (see stash_reused_).
  };

  static Taken take_packet(Core& c) {
    // Steady-state fast path: the pair parked by the previous release on
    // this thread. No lock, no atomics; the stashed storage was never
    // subtracted from outstanding/live, so the counters are already right.
    TlsStash& s = tls_stash;
    if (s.core == &c && s.complete()) {
      Taken t{s.pkt, s.block, s.block_size, true};
      s.pkt = nullptr;
      s.block = nullptr;
      return t;
    }
    Taken t;
    {
      std::lock_guard<SpinLock> lk(c.mu);
      ++c.outstanding;
      ++c.live;  // The packet itself.
      c.high_water = std::max(c.high_water, c.outstanding);
      if (!c.free_packets.empty()) {
        t.pkt = c.free_packets.back();
        c.free_packets.pop_back();
        c.pooled_bytes -= sizeof(Packet) + t.pkt->payload.capacity();
        ++c.reused;
        if (!c.free_blocks.empty()) {
          t.block = c.free_blocks.back();
          c.free_blocks.pop_back();
          t.block_size = c.block_size;
          c.pooled_bytes -= c.block_size;
          ++c.live;  // The prefetched control block.
        }
      } else {
        ++c.fresh;
      }
    }
    if (t.pkt == nullptr) t.pkt = new Packet();
    return t;
  }

  // The shared_ptr deleter lands here. Scrub the packet back to the
  // acquire() contract, salvage the covered-key vector's capacity, and pool
  // what the byte budget allows.
  static void release_packet(Core& c, Packet* p) {
    std::vector<PacketKey> keys;
    if (p->meta) {
      keys = std::move(p->meta->covered);
      keys.clear();
    }
    p->meta.reset();
    p->type = PacketType::kData;
    p->service = ServiceType::kNone;
    p->flow = 0;
    p->seq = 0;
    p->src = kInvalidNode;
    p->dst = kInvalidNode;
    p->final_dst = kInvalidNode;
    p->sent_at = 0;
    p->ecn_capable = false;
    p->ecn_ce = false;
    p->payload.clear();
    if (p->payload.capacity() > c.limits.max_packet_bytes) {
      p->payload.shrink_to_fit();
    }
    // Fast path: park the packet in the thread-local stash (the control
    // block joins it in give_block, and the next acquire takes the pair
    // back without locking). Coded packets with salvageable key capacity
    // take the locked path so the spare-keys freelist sees them.
    if (keys.capacity() == 0) {
      TlsStash& s = tls_stash;
      if (s.core != &c || s.pkt != nullptr) drain_stash(s);
      s.core = &c;
      s.pkt = p;
      return;
    }
    bool pooled = false;
    bool dead = false;
    {
      std::lock_guard<SpinLock> lk(c.mu);
      --c.outstanding;
      --c.live;
      const std::size_t pb = sizeof(Packet) + p->payload.capacity();
      if (c.pooled_bytes + pb <= c.limits.max_retained_bytes) {
        c.pooled_bytes += pb;
        c.free_packets.push_back(p);
        pooled = true;
      }
      if (keys.capacity() > 0) {
        const std::size_t kb = keys.capacity() * sizeof(PacketKey);
        if (c.pooled_bytes + kb <= c.limits.max_retained_bytes) {
          c.pooled_bytes += kb;
          c.spare_keys.push_back(std::move(keys));
        }
      }
      dead = c.orphaned && c.live == 0;
    }
    if (!pooled) delete p;
    if (dead) delete &c;
  }

  // Control blocks are all the same size for a given shared_ptr shape; the
  // first allocation records it, and only that size is pooled (anything else
  // -- e.g. a weak_ptr-extended layout from a future libstdc++ -- falls back
  // to the heap, discriminated again at deallocate time).
  static void* take_block(Core& c, std::size_t bytes) {
    {
      std::lock_guard<SpinLock> lk(c.mu);
      ++c.live;
      if (c.block_size == 0) c.block_size = bytes;
      if (bytes == c.block_size && !c.free_blocks.empty()) {
        void* b = c.free_blocks.back();
        c.free_blocks.pop_back();
        c.pooled_bytes -= bytes;
        return b;
      }
    }
    return ::operator new(bytes);
  }

  static void give_block(Core& c, void* b, std::size_t bytes) {
    // Fast path: complete the pair the deleter just parked. Any (packet,
    // block) pairing works -- both are interchangeable storage of `c`.
    TlsStash& s = tls_stash;
    if (s.core == &c && s.pkt != nullptr && s.block == nullptr) {
      s.block = b;
      s.block_size = bytes;
      return;
    }
    bool pooled = false;
    bool dead = false;
    {
      std::lock_guard<SpinLock> lk(c.mu);
      --c.live;
      if (bytes == c.block_size &&
          c.pooled_bytes + bytes <= c.limits.max_retained_bytes) {
        c.pooled_bytes += bytes;
        c.free_blocks.push_back(b);
        pooled = true;
      }
      dead = c.orphaned && c.live == 0;
    }
    if (!pooled) ::operator delete(b);
    if (dead) delete &c;
  }

  // Stash drain: returns a parked pair to the freelists with the same
  // accounting the locked release/give paths would have done.
  static void absorb_stash(Core& c, Packet* pkt, void* block,
                           std::size_t block_size) {
    bool pooled_pkt = false;
    bool pooled_blk = false;
    bool dead = false;
    {
      std::lock_guard<SpinLock> lk(c.mu);
      if (pkt != nullptr) {
        --c.outstanding;
        --c.live;
        const std::size_t pb = sizeof(Packet) + pkt->payload.capacity();
        if (c.pooled_bytes + pb <= c.limits.max_retained_bytes) {
          c.pooled_bytes += pb;
          c.free_packets.push_back(pkt);
          pooled_pkt = true;
        }
      }
      if (block != nullptr) {
        --c.live;
        if (block_size == c.block_size &&
            c.pooled_bytes + block_size <= c.limits.max_retained_bytes) {
          c.pooled_bytes += block_size;
          c.free_blocks.push_back(block);
          pooled_blk = true;
        }
      }
      dead = c.orphaned && c.live == 0;
    }
    if (pkt != nullptr && !pooled_pkt) delete pkt;
    if (block != nullptr && !pooled_blk) ::operator delete(block);
    if (dead) delete &c;
  }

  mutable SpinLock mu;
  Limits limits;
  // Lifetime: the deleter/allocator reference the core by RAW pointer (a
  // shared_ptr would cost ~6 atomic refcount ops per packet). `live` counts
  // every packet and control block currently checked out; when the facade
  // dies it sets `orphaned`, and whichever release drains `live` to zero
  // (here, in give_block, or the facade dtor itself) deletes the core.
  bool orphaned = false;
  std::size_t live = 0;
  std::vector<Packet*> free_packets;
  std::vector<void*> free_blocks;
  std::vector<std::vector<PacketKey>> spare_keys;
  std::size_t block_size = 0;
  std::size_t pooled_bytes = 0;
  std::size_t outstanding = 0;
  std::size_t high_water = 0;
  std::uint64_t reused = 0;
  std::uint64_t fresh = 0;
};

namespace {

void drain_stash(TlsStash& s) {
  // Dereference the core only when storage is parked: parked storage keeps
  // the core's `live` count nonzero, so the pointer is guaranteed valid. An
  // empty stash may carry a stale pointer to a core that has already died.
  if (s.pkt != nullptr || s.block != nullptr) {
    PacketPool::Core::absorb_stash(*s.core, s.pkt, s.block, s.block_size);
  }
  s.core = nullptr;
  s.pkt = nullptr;
  s.block = nullptr;
  s.block_size = 0;
}

// Thread exit returns whatever the thread still has parked; the core is
// guaranteed alive because parked storage is still counted in `live`.
TlsStash::~TlsStash() { drain_stash(*this); }

struct Recycle {
  PacketPool::Core* core;
  void operator()(Packet* p) const { PacketPool::Core::release_packet(*core, p); }
};

// Carries the control-block storage prefetched by take_packet. The
// shared_ptr constructor rebinds and copies this allocator, but calls
// allocate() exactly once per construction, so copies sharing `pre` cannot
// double-consume it; a size mismatch (first-ever allocation teaches the pool
// the block size, or a libstdc++ layout change) returns the prefetch and
// falls back to the locked path.
template <typename T>
struct CtrlAlloc {
  using value_type = T;

  CtrlAlloc(PacketPool::Core* c, void* prefetched, std::size_t prefetched_size)
      : core(c), pre(prefetched), pre_size(prefetched_size) {}
  template <typename U>
  CtrlAlloc(const CtrlAlloc<U>& o)  // NOLINT(runtime/explicit)
      : core(o.core), pre(o.pre), pre_size(o.pre_size) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (pre != nullptr && bytes == pre_size) return static_cast<T*>(pre);
    if (pre != nullptr) PacketPool::Core::give_block(*core, pre, pre_size);
    return static_cast<T*>(PacketPool::Core::take_block(*core, bytes));
  }
  void deallocate(T* p, std::size_t n) {
    PacketPool::Core::give_block(*core, p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const CtrlAlloc<U>& o) const {
    return core == o.core;
  }

  PacketPool::Core* core;
  void* pre;
  std::size_t pre_size;
};

}  // namespace

PacketPool::PacketPool(bool enabled, Limits limits)
    : enabled_(enabled), core_(new Core(limits)) {}

PacketPool::~PacketPool() {
  if (tls_stash.core == core_) drain_stash(tls_stash);
  bool dead = false;
  {
    std::lock_guard<SpinLock> lk(core_->mu);
    core_->orphaned = true;
    dead = core_->live == 0;
  }
  if (dead) delete core_;
}

std::shared_ptr<Packet> PacketPool::acquire() {
  if (!enabled_) return std::make_shared<Packet>();
  Core::Taken t = Core::take_packet(*core_);
  // Plain member increment: acquire is single-threaded by the ownership
  // contract (one pool per lane), and keeping the stat here keeps the
  // stash fast path free of atomics.
  if (t.from_stash) ++stash_reused_;
  return std::shared_ptr<Packet>(t.pkt, Recycle{core_},
                                 CtrlAlloc<Packet>(core_, t.block, t.block_size));
}

std::shared_ptr<Packet> PacketPool::acquire_copy(const Packet& src) {
  if (!enabled_) return std::make_shared<Packet>(src);
  auto p = acquire();
  p->type = src.type;
  p->service = src.service;
  p->flow = src.flow;
  p->seq = src.seq;
  p->src = src.src;
  p->dst = src.dst;
  p->final_dst = src.final_dst;
  p->sent_at = src.sent_at;
  p->ecn_capable = src.ecn_capable;
  p->ecn_ce = src.ecn_ce;
  p->payload = src.payload;
  if (src.meta) {
    CodedMeta& m = engage_meta(*p);
    m.batch_id = src.meta->batch_id;
    m.index = src.meta->index;
    m.k = src.meta->k;
    m.r = src.meta->r;
    m.covered = src.meta->covered;
  }
  return p;
}

CodedMeta& PacketPool::engage_meta(Packet& pkt) {
  if (!pkt.meta) pkt.meta.emplace();
  CodedMeta& m = *pkt.meta;
  m.covered.clear();
  if (enabled_ && m.covered.capacity() == 0) {
    std::lock_guard<SpinLock> lk(core_->mu);
    if (!core_->spare_keys.empty()) {
      core_->pooled_bytes -=
          core_->spare_keys.back().capacity() * sizeof(PacketKey);
      m.covered = std::move(core_->spare_keys.back());
      core_->spare_keys.pop_back();
    }
  }
  m.batch_id = 0;
  m.index = 0;
  m.k = 0;
  m.r = 0;
  return m;
}

// Accessors drain the calling thread's stash first so single-threaded
// callers (tests, benches) observe exact counts; parked storage on OTHER
// threads is still reported as outstanding, which is the truthful reading.
std::size_t PacketPool::pooled_bytes() const {
  if (tls_stash.core == core_) drain_stash(tls_stash);
  std::lock_guard<SpinLock> lk(core_->mu);
  return core_->pooled_bytes;
}
std::size_t PacketPool::high_water() const {
  std::lock_guard<SpinLock> lk(core_->mu);
  return core_->high_water;
}
std::size_t PacketPool::outstanding() const {
  if (tls_stash.core == core_) drain_stash(tls_stash);
  std::lock_guard<SpinLock> lk(core_->mu);
  return core_->outstanding;
}
std::uint64_t PacketPool::reused() const {
  std::lock_guard<SpinLock> lk(core_->mu);
  return core_->reused + stash_reused_;
}
std::uint64_t PacketPool::fresh() const {
  std::lock_guard<SpinLock> lk(core_->mu);
  return core_->fresh;
}

bool PacketPool::env_enabled() {
  const char* v = std::getenv("JQOS_OBJ_POOL");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

}  // namespace jqos
