#include "geo/coords.h"

#include <cmath>

namespace jqos::geo {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
// Light in fiber: ~2/3 c ~= 200 km/ms.
constexpr double kKmPerMs = 200.0;
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double propagation_ms(double distance_km, double inflation) {
  return distance_km * inflation / kKmPerMs;
}

}  // namespace jqos::geo
