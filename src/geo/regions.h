// Catalog of cloud regions (data-center sites) and coarse world regions.
//
// Sites carry real coordinates and the year the region opened, which drives
// the Figure 7(d) reproduction: northern-EU hosts' nearest DC was Ireland
// (2007), then Frankfurt (2014), then Stockholm (2018).
#pragma once

#include <string>
#include <vector>

#include "geo/coords.h"

namespace jqos::geo {

// Coarse world regions used to group hosts and DCs (the paper's PlanetLab
// deployment spans US, EU, Asia and Oceania).
enum class WorldRegion { kUsEast, kUsWest, kEurope, kNorthEurope, kAsia, kOceania, kSouthAmerica };

const char* to_string(WorldRegion r);

struct CloudSite {
  std::string name;      // e.g. "eu-north-stockholm"
  GeoPoint location;
  int opened_year = 0;   // First year the region served traffic.
  WorldRegion region = WorldRegion::kEurope;
};

// All cloud sites in the catalog (a representative union of the large
// providers' regions as of the paper's study period).
const std::vector<CloudSite>& cloud_sites();

// Sites that existed in `year` (opened_year <= year). Fig. 7(d) evaluates
// 2007 / 2014 / 2018 snapshots.
std::vector<CloudSite> cloud_sites_as_of(int year);

// The geographically nearest site to `p` among `sites`; requires non-empty.
const CloudSite& nearest_site(const std::vector<CloudSite>& sites, const GeoPoint& p);

}  // namespace jqos::geo
