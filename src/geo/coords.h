// Geographic coordinates and distance -> delay conversion.
//
// The paper measures one-way delays with ping (RTT/2) on real paths; we
// synthesize the same quantities from geography: great-circle distance,
// light-in-fiber propagation (~200 km/ms one way), and a path-inflation
// factor that differs between the public Internet (circuitous routes,
// typical inflation 1.6-2.2x) and cloud backbones (engineered routes,
// ~1.2-1.4x). These constants reproduce the published relationships, e.g.
// US-East <-> EU direct RTTs of 110-130 ms.
#pragma once

namespace jqos::geo {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

// Great-circle distance in kilometers.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

// One-way propagation delay in milliseconds for a route of the given
// great-circle distance and inflation factor. Light in fiber covers about
// 200 km per millisecond.
double propagation_ms(double distance_km, double inflation);

// Default inflation factors.
inline constexpr double kInternetInflation = 1.9;
inline constexpr double kCloudInflation = 1.3;
// Host <-> nearby-DC routes are short and often well-peered (the paper notes
// cloud operators peer directly with customer ISPs).
inline constexpr double kAccessInflation = 1.6;

}  // namespace jqos::geo
