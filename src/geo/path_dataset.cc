#include "geo/path_dataset.h"

#include <array>
#include <sstream>
#include <stdexcept>

#include "geo/coords.h"

namespace jqos::geo {

PathSample make_path(const Host& sender, const Host& receiver,
                     const std::vector<CloudSite>& sites, double internet_inflation,
                     double bad_path_extra_ms) {
  PathSample p;
  p.sender = sender;
  p.receiver = receiver;
  p.dc1 = nearest_site(sites, sender.location);
  p.dc2 = nearest_site(sites, receiver.location);

  const double direct_km = haversine_km(sender.location, receiver.location);
  p.y_ms = propagation_ms(direct_km, internet_inflation) + sender.last_mile_ms +
           receiver.last_mile_ms + bad_path_extra_ms;

  const double s_dc1_km = haversine_km(sender.location, p.dc1.location);
  p.delta_s_ms = propagation_ms(s_dc1_km, kAccessInflation) + sender.last_mile_ms;

  const double r_dc2_km = haversine_km(receiver.location, p.dc2.location);
  p.delta_r_ms = propagation_ms(r_dc2_km, kAccessInflation) + receiver.last_mile_ms;

  const double dc_km = haversine_km(p.dc1.location, p.dc2.location);
  p.x_ms = propagation_ms(dc_km, kCloudInflation);
  return p;
}

std::vector<PathSample> synthesize_paths(const PathDatasetParams& params, Rng& rng) {
  Rng host_rng = rng.fork("hosts");
  // Draw enough hosts that pairs are diverse; reuse hosts across paths as
  // RIPE anchors are reused across measurements.
  const std::size_t pool = std::max<std::size_t>(16, params.num_paths / 8);
  auto senders = synthesize_hosts(params.sender_region, pool, host_rng);
  auto receivers = synthesize_hosts(params.receiver_region, pool, host_rng);
  const auto sites = cloud_sites_as_of(params.dc_catalog_year);
  if (sites.empty()) throw std::invalid_argument("no cloud sites for catalog year");

  std::vector<PathSample> paths;
  paths.reserve(params.num_paths);
  for (std::size_t i = 0; i < params.num_paths; ++i) {
    const Host& s =
        senders[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(senders.size()) - 1))];
    const Host& r = receivers[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(receivers.size()) - 1))];
    const double inflation =
        rng.uniform(params.internet_inflation_min, params.internet_inflation_max);
    const double extra =
        rng.bernoulli(params.bad_path_fraction)
            ? rng.uniform(0.5, 1.5) * params.bad_path_extra_ms
            : 0.0;
    paths.push_back(make_path(s, r, sites, inflation, extra));
  }
  return paths;
}

std::vector<PathSample> planetlab_paths(std::size_t count, Rng& rng) {
  // Region pairs mirroring the deployment's US/EU/Asia/OC spread.
  static const std::array<std::pair<WorldRegion, WorldRegion>, 6> kPairs = {{
      {WorldRegion::kUsEast, WorldRegion::kEurope},
      {WorldRegion::kUsWest, WorldRegion::kAsia},
      {WorldRegion::kUsEast, WorldRegion::kOceania},
      {WorldRegion::kEurope, WorldRegion::kOceania},
      {WorldRegion::kEurope, WorldRegion::kAsia},
      {WorldRegion::kUsWest, WorldRegion::kUsEast},
  }};
  // The deployment's footprint: "five different DCs ... located in US, EU,
  // Asia, and OC" (Section 6.2.1). Confining the overlay to five sites is
  // what gives each (DC1, DC2) pair enough concurrent flows to form
  // cross-stream batches.
  std::vector<CloudSite> sites;
  for (const char* name : {"us-east-virginia", "us-west-oregon", "eu-west-ireland",
                           "ap-southeast-singapore", "ap-southeast-sydney"}) {
    for (const CloudSite& s : cloud_sites()) {
      if (s.name == name) sites.push_back(s);
    }
  }
  Rng host_rng = rng.fork("pl-hosts");

  std::vector<PathSample> paths;
  paths.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& [sr, rr] = kPairs[i % kPairs.size()];
    auto s = synthesize_hosts(sr, 1, host_rng);
    auto r = synthesize_hosts(rr, 1, host_rng);
    const double inflation = rng.uniform(1.6, 2.4);
    // PlanetLab nodes live in universities: good access links, so no
    // bad-path inflation, but the wide-area segment still varies.
    paths.push_back(make_path(s[0], r[0], sites, inflation, 0.0));
  }
  return paths;
}

std::string region_pair_label(const PathSample& path) {
  auto shorten = [](WorldRegion r) -> std::string {
    switch (r) {
      case WorldRegion::kUsEast:
      case WorldRegion::kUsWest: return "US";
      case WorldRegion::kEurope:
      case WorldRegion::kNorthEurope: return "EU";
      case WorldRegion::kAsia: return "AS";
      case WorldRegion::kOceania: return "OC";
      case WorldRegion::kSouthAmerica: return "SA";
    }
    return "?";
  };
  std::string a = shorten(path.sender.region);
  std::string b = shorten(path.receiver.region);
  if (a == b) return a + "-" + b;
  // Canonical order so US-EU and EU-US group together.
  if (b < a) std::swap(a, b);
  std::ostringstream os;
  os << a << "-" << b;
  return os.str();
}

}  // namespace jqos::geo
