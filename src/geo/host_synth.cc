#include "geo/host_synth.h"

#include <cmath>
#include <sstream>

namespace jqos::geo {

const std::vector<GeoPoint>& metro_anchors(WorldRegion region) {
  static const std::vector<GeoPoint> us_east = {
      {42.36, -71.06},  // Boston
      {40.71, -74.01},  // New York
      {39.95, -75.17},  // Philadelphia
      {38.91, -77.04},  // Washington DC
      {40.44, -79.98},  // Pittsburgh
      {35.78, -78.64},  // Raleigh
      {33.75, -84.39},  // Atlanta
      {43.66, -79.38},  // Toronto (east-coast PlanetLab footprint)
  };
  static const std::vector<GeoPoint> us_west = {
      {37.77, -122.42},  // San Francisco
      {34.05, -118.24},  // Los Angeles
      {47.61, -122.33},  // Seattle
      {45.52, -122.68},  // Portland
      {32.72, -117.16},  // San Diego
  };
  static const std::vector<GeoPoint> europe = {
      {51.51, -0.13},   // London
      {48.86, 2.35},    // Paris
      {52.52, 13.41},   // Berlin
      {52.37, 4.90},    // Amsterdam
      {50.85, 4.35},    // Brussels
      {48.14, 11.58},   // Munich
      {47.37, 8.54},    // Zurich
      {48.21, 16.37},   // Vienna
      {50.08, 14.44},   // Prague
      {52.23, 21.01},   // Warsaw
      {40.42, -3.70},   // Madrid
      {41.90, 12.50},   // Rome
      {38.72, -9.14},   // Lisbon
      {37.98, 23.73},   // Athens
      {47.50, 19.04},   // Budapest
      {53.35, -6.26},   // Dublin
  };
  static const std::vector<GeoPoint> north_europe = {
      {59.33, 18.07},  // Stockholm
      {59.91, 10.75},  // Oslo
      {60.17, 24.94},  // Helsinki
      {55.68, 12.57},  // Copenhagen
      {57.71, 11.97},  // Gothenburg
      {56.95, 24.11},  // Riga
      {59.44, 24.75},  // Tallinn
  };
  static const std::vector<GeoPoint> asia = {
      {35.68, 139.69},  // Tokyo
      {37.57, 126.98},  // Seoul
      {1.35, 103.82},   // Singapore
      {22.32, 114.17},  // Hong Kong
      {25.03, 121.57},  // Taipei
      {13.76, 100.50},  // Bangkok
  };
  static const std::vector<GeoPoint> oceania = {
      {-33.87, 151.21},  // Sydney
      {-37.81, 144.96},  // Melbourne
      {-27.47, 153.03},  // Brisbane
      {-36.85, 174.76},  // Auckland
  };
  static const std::vector<GeoPoint> south_america = {
      {-23.55, -46.63},  // Sao Paulo
      {-22.91, -43.17},  // Rio de Janeiro
      {-34.60, -58.38},  // Buenos Aires
      {-33.45, -70.67},  // Santiago
  };
  switch (region) {
    case WorldRegion::kUsEast: return us_east;
    case WorldRegion::kUsWest: return us_west;
    case WorldRegion::kEurope: return europe;
    case WorldRegion::kNorthEurope: return north_europe;
    case WorldRegion::kAsia: return asia;
    case WorldRegion::kOceania: return oceania;
    case WorldRegion::kSouthAmerica: return south_america;
  }
  return europe;
}

std::vector<Host> synthesize_hosts(WorldRegion region, std::size_t count, Rng& rng) {
  const auto& anchors = metro_anchors(region);
  std::vector<Host> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const GeoPoint& anchor =
        anchors[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(anchors.size()) - 1))];
    Host h;
    // Scatter ~0.7 degrees (roughly 40-80 km) around the metro, covering
    // suburbs and nearby towns the probes actually sit in.
    h.location.lat_deg = anchor.lat_deg + rng.normal(0.0, 0.7);
    h.location.lon_deg = anchor.lon_deg + rng.normal(0.0, 0.7);
    h.region = region;
    // Last-mile: median ~3 ms, occasionally 15+ ms (DSL, congested cable).
    // Calibrated so receiver<->DC RTTs land in the paper's 16-70 ms band
    // (Section 6.2.2: mu = 28 ms) with 55% of one-way deltas under 10 ms.
    h.last_mile_ms = rng.lognormal(std::log(3.0), 0.9);
    std::ostringstream name;
    name << to_string(region) << "-host-" << i;
    h.name = name.str();
    hosts.push_back(std::move(h));
  }
  return hosts;
}

}  // namespace jqos::geo
