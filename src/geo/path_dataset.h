// Synthetic wide-area path datasets, standing in for the paper's RIPE
// Atlas (Section 6.1: 6,250 US-East -> EU paths) and PlanetLab (Section
// 6.2: 45 paths across four continents) measurements.
//
// Each PathSample carries the one-way segment delays the J-QoS delay
// formulas consume: the direct Internet delay y, the host<->nearby-DC
// delays (delta), and the inter-DC cloud delay x, along with which cloud
// sites act as DC1/DC2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/host_synth.h"
#include "geo/regions.h"

namespace jqos::geo {

struct PathSample {
  Host sender;
  Host receiver;
  CloudSite dc1;  // Nearest site to the sender.
  CloudSite dc2;  // Nearest site to the receiver.

  // One-way delays in milliseconds (medians; jitter is layered on by the
  // simulator's latency models, not baked into the dataset).
  double y_ms = 0.0;        // sender -> receiver over the public Internet
  double delta_s_ms = 0.0;  // sender -> DC1
  double delta_r_ms = 0.0;  // receiver -> DC2
  double x_ms = 0.0;        // DC1 -> DC2 over the cloud backbone

  double direct_rtt_ms() const { return 2.0 * y_ms; }
};

// Configuration for dataset synthesis.
struct PathDatasetParams {
  WorldRegion sender_region = WorldRegion::kUsEast;
  WorldRegion receiver_region = WorldRegion::kEurope;
  std::size_t num_paths = 100;
  int dc_catalog_year = 2019;  // Which cloud sites exist.
  // The public Internet's inflation varies per path (peering luck); sampled
  // uniformly in [min, max]. A small fraction of paths is "persistently
  // bad" (Section 6.1's long tail) and gets `bad_path_extra_ms` added.
  double internet_inflation_min = 1.6;
  double internet_inflation_max = 2.4;
  double bad_path_fraction = 0.08;
  double bad_path_extra_ms = 60.0;
};

// Draws num_paths sender/receiver pairs and fills in all segment delays.
std::vector<PathSample> synthesize_paths(const PathDatasetParams& params, Rng& rng);

// One sender/receiver pair between two specific hosts using the given DC
// catalog; exposed so scenario builders can construct bespoke paths.
PathSample make_path(const Host& sender, const Host& receiver,
                     const std::vector<CloudSite>& sites, double internet_inflation,
                     double bad_path_extra_ms);

// The PlanetLab-style deployment of Section 6.2: 45 paths spanning
// US-East/US-West/EU/Asia/OC region pairs (sender region != receiver
// region), using the full 2019 DC catalog.
std::vector<PathSample> planetlab_paths(std::size_t count, Rng& rng);

// Region-pair label like "US-EU" used to group Figure 8(d) series.
std::string region_pair_label(const PathSample& path);

}  // namespace jqos::geo
