// Synthetic end hosts standing in for RIPE Atlas probes and PlanetLab nodes.
//
// Hosts are drawn around real metro areas of each world region with a
// kilometer-scale scatter, plus a per-host last-mile latency component
// (lognormal, a few ms) that models the access network between the host and
// its first well-connected PoP.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "geo/regions.h"

namespace jqos::geo {

struct Host {
  std::string name;
  GeoPoint location;
  WorldRegion region;
  double last_mile_ms = 0.0;  // One-way access latency contribution.
};

// Metro anchors available for a region (real city coordinates).
const std::vector<GeoPoint>& metro_anchors(WorldRegion region);

// Draws `count` hosts for `region`. Deterministic given rng state.
std::vector<Host> synthesize_hosts(WorldRegion region, std::size_t count, Rng& rng);

}  // namespace jqos::geo
