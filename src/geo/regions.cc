#include "geo/regions.h"

#include <limits>
#include <stdexcept>

namespace jqos::geo {

const char* to_string(WorldRegion r) {
  switch (r) {
    case WorldRegion::kUsEast: return "US-East";
    case WorldRegion::kUsWest: return "US-West";
    case WorldRegion::kEurope: return "EU";
    case WorldRegion::kNorthEurope: return "N-EU";
    case WorldRegion::kAsia: return "Asia";
    case WorldRegion::kOceania: return "OC";
    case WorldRegion::kSouthAmerica: return "SA";
  }
  return "?";
}

const std::vector<CloudSite>& cloud_sites() {
  // Coordinates are the metro areas of well-known provider regions; opening
  // years follow the public history of the major clouds (the Fig. 7(d)
  // sequence Ireland 2007 -> Frankfurt 2014 -> Stockholm 2018 is exact).
  static const std::vector<CloudSite> sites = {
      {"us-east-virginia", {38.95, -77.45}, 2006, WorldRegion::kUsEast},
      {"us-east-ohio", {40.00, -83.00}, 2016, WorldRegion::kUsEast},
      {"us-west-california", {37.35, -121.95}, 2009, WorldRegion::kUsWest},
      {"us-west-oregon", {45.60, -121.20}, 2011, WorldRegion::kUsWest},
      {"eu-west-ireland", {53.35, -6.26}, 2007, WorldRegion::kEurope},
      {"eu-west-london", {51.51, -0.13}, 2016, WorldRegion::kEurope},
      {"eu-west-paris", {48.86, 2.35}, 2017, WorldRegion::kEurope},
      {"eu-central-frankfurt", {50.11, 8.68}, 2014, WorldRegion::kEurope},
      {"eu-south-milan", {45.46, 9.19}, 2020, WorldRegion::kEurope},
      {"eu-north-stockholm", {59.33, 18.07}, 2018, WorldRegion::kNorthEurope},
      {"ap-northeast-tokyo", {35.68, 139.69}, 2011, WorldRegion::kAsia},
      {"ap-northeast-seoul", {37.57, 126.98}, 2016, WorldRegion::kAsia},
      {"ap-southeast-singapore", {1.35, 103.82}, 2010, WorldRegion::kAsia},
      {"ap-east-hongkong", {22.32, 114.17}, 2019, WorldRegion::kAsia},
      {"ap-south-mumbai", {19.08, 72.88}, 2016, WorldRegion::kAsia},
      {"ap-southeast-sydney", {-33.87, 151.21}, 2012, WorldRegion::kOceania},
      {"sa-east-saopaulo", {-23.55, -46.63}, 2011, WorldRegion::kSouthAmerica},
  };
  return sites;
}

std::vector<CloudSite> cloud_sites_as_of(int year) {
  std::vector<CloudSite> out;
  for (const CloudSite& s : cloud_sites()) {
    if (s.opened_year <= year) out.push_back(s);
  }
  return out;
}

const CloudSite& nearest_site(const std::vector<CloudSite>& sites, const GeoPoint& p) {
  if (sites.empty()) throw std::invalid_argument("nearest_site: empty site list");
  const CloudSite* best = nullptr;
  double best_km = std::numeric_limits<double>::max();
  for (const CloudSite& s : sites) {
    const double km = haversine_km(s.location, p);
    if (km < best_km) {
      best_km = km;
      best = &s;
    }
  }
  return *best;
}

}  // namespace jqos::geo
