#include "workload/flow_size.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace jqos::workload {

FlowSizeDist FlowSizeDist::from_points(std::vector<CdfPoint> points) {
  if (points.size() < 2) {
    throw std::invalid_argument("FlowSizeDist: need at least two CDF points");
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CdfPoint& p = points[i];
    if (!(p.bytes >= 0.0) || !(p.cum >= 0.0) || !(p.cum <= 1.0 + 1e-9)) {
      throw std::invalid_argument("FlowSizeDist: point out of range");
    }
    if (i > 0 && !(p.bytes > points[i - 1].bytes)) {
      throw std::invalid_argument("FlowSizeDist: bytes must be strictly increasing");
    }
    if (i > 0 && p.cum < points[i - 1].cum) {
      throw std::invalid_argument("FlowSizeDist: cum must be non-decreasing");
    }
  }
  if (std::abs(points.back().cum - 1.0) > 1e-6) {
    throw std::invalid_argument("FlowSizeDist: CDF must reach 1.0");
  }
  points.back().cum = 1.0;
  FlowSizeDist dist;
  dist.points_ = std::move(points);
  return dist;
}

FlowSizeDist FlowSizeDist::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FlowSizeDist: cannot open " + path);
  std::vector<CdfPoint> points;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    double bytes = 0.0, percent = 0.0;
    if (!(fields >> bytes)) continue;  // Blank or comment-only line.
    if (!(fields >> percent)) {
      throw std::runtime_error("FlowSizeDist: " + path + ":" + std::to_string(line_no) +
                               ": expected \"<bytes> <percent>\"");
    }
    points.push_back(CdfPoint{bytes, percent / 100.0});
  }
  try {
    return from_points(std::move(points));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("FlowSizeDist: " + path + ": " + e.what());
  }
}

FlowSizeDist FlowSizeDist::app_mix(AppMix mix) {
  switch (mix) {
    case AppMix::kVideoCall:
      // Call payload per session: short clips dominate, few long calls.
      return from_points({{20e3, 0.0},
                          {100e3, 0.25},
                          {400e3, 0.60},
                          {1e6, 0.85},
                          {4e6, 1.0}});
    case AppMix::kWebTransfer:
      // Web-object shape: ~70% under 20 KB, heavy tail to 1 MB.
      return from_points({{500, 0.0},
                          {2e3, 0.30},
                          {10e3, 0.55},
                          {20e3, 0.70},
                          {100e3, 0.90},
                          {300e3, 0.97},
                          {1e6, 1.0}});
    case AppMix::kBulkTcp:
      // Replication/backup: everything is big, spread over two decades.
      return from_points({{100e3, 0.0},
                          {1e6, 0.35},
                          {5e6, 0.70},
                          {20e6, 0.92},
                          {50e6, 1.0}});
  }
  throw std::invalid_argument("FlowSizeDist: unknown AppMix");
}

double FlowSizeDist::sample(Rng& rng) const {
  const double u = rng.next_double();
  // First knot with cum >= u; interpolate from its predecessor.
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const CdfPoint& p, double v) { return p.cum < v; });
  if (it == points_.begin()) return points_.front().bytes;
  if (it == points_.end()) return points_.back().bytes;
  const CdfPoint& lo = *(it - 1);
  const CdfPoint& hi = *it;
  const double span = hi.cum - lo.cum;
  if (span <= 0.0) return hi.bytes;
  const double frac = (u - lo.cum) / span;
  return lo.bytes + frac * (hi.bytes - lo.bytes);
}

double FlowSizeDist::mean_bytes() const {
  // Within each linear segment the conditional mean is the midpoint.
  double mean = points_.front().bytes * points_.front().cum;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const CdfPoint& lo = points_[i - 1];
    const CdfPoint& hi = points_[i];
    mean += (hi.cum - lo.cum) * 0.5 * (lo.bytes + hi.bytes);
  }
  return mean;
}

}  // namespace jqos::workload
