#include "workload/arrivals.h"

#include <cmath>
#include <stdexcept>

namespace jqos::workload {

ArrivalProcess::ArrivalProcess(const ArrivalParams& params, double rate_per_sec, Rng rng)
    : params_(params), rate_(rate_per_sec), rng_(rng) {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("ArrivalProcess: rate must be positive");
  }
  switch (params_.kind) {
    case ArrivalKind::kPoisson:
      break;
    case ArrivalKind::kPareto:
      // E[Pareto(xm, alpha)] = alpha*xm/(alpha-1); solve for xm at 1/rate.
      if (!(params_.pareto_alpha > 1.0)) {
        throw std::invalid_argument("ArrivalProcess: pareto_alpha must exceed 1");
      }
      pareto_xm_ = (params_.pareto_alpha - 1.0) / (params_.pareto_alpha * rate_);
      break;
    case ArrivalKind::kLognormal:
      // E[LN(mu, sigma)] = exp(mu + sigma^2/2); solve for mu at 1/rate.
      if (!(params_.lognormal_sigma > 0.0)) {
        throw std::invalid_argument("ArrivalProcess: lognormal_sigma must be positive");
      }
      lognormal_mu_ =
          -std::log(rate_) - 0.5 * params_.lognormal_sigma * params_.lognormal_sigma;
      break;
  }
}

double ArrivalProcess::next_gap() {
  switch (params_.kind) {
    case ArrivalKind::kPoisson:
      return rng_.exponential(1.0 / rate_);
    case ArrivalKind::kPareto:
      return rng_.pareto(pareto_xm_, params_.pareto_alpha);
    case ArrivalKind::kLognormal:
      return rng_.lognormal(lognormal_mu_, params_.lognormal_sigma);
  }
  throw std::logic_error("ArrivalProcess: unknown kind");
}

}  // namespace jqos::workload
