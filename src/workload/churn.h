// Million-session flow-churn workload: dynamic session arrival and
// departure over a sharded WAN scenario.
//
// The figure-reproduction scenarios run one long-lived flow per path. Real
// overlays serve CHURN: sessions arrive (Poisson or heavy-tailed), transfer
// a CDF-drawn number of bytes, and leave, so the deployment's steady state
// holds per-flow state only for the sessions alive right now. This runner
// drives exactly that workload through the full stack -- sender duplication,
// encoder batching, recovery, cooperative repair -- and checks the two
// properties the stack must have under churn:
//
//  * O(active sessions) memory: every layer reclaims a departed session's
//    state (ScenarioShard::close_session), so a soak over a million sessions
//    runs in the footprint of its concurrency, not its history. bench_churn
//    proves it by comparing peak RSS of a 1x and a 4x soak.
//  * Determinism: all randomness (arrival gaps, flow sizes, loss, jitter)
//    derives from stable identities, so with a fixed shard count the merged
//    result is bit-identical across thread counts and event-queue backends
//    (tests/workload_test.cc pins the fingerprint).
//
// Delivery quality is summarized with O(1)-memory QuantileSketches (see
// common/stats.h) -- a million sessions' completion times cannot be buffered
// as raw Samples. Sketches are merged in shard-index order, which makes the
// sketch contents a pure function of (config, num_shards).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "exp/scenario.h"
#include "workload/arrivals.h"
#include "workload/flow_size.h"

namespace jqos::workload {

struct ChurnConfig {
  // Host pairs (paths) sessions churn over; drawn from the PlanetLab-like
  // geography model with the scenario seed.
  std::size_t num_pairs = 15;
  // Arrival window: sessions arrive in [0, duration); the run then drains
  // until every accepted session finishes.
  SimDuration duration = sec(60);
  ArrivalParams arrivals;
  // Session sizes; when `cdf_file` is set it overrides `mix`.
  AppMix mix = AppMix::kWebTransfer;
  std::optional<std::string> cdf_file;
  // Send pacing within a session.
  double packets_per_second = 50.0;
  std::size_t payload_bytes = 512;
  // Sessions longer than this are truncated (keeps bulk-mix soaks bounded).
  std::uint32_t max_session_packets = 2000;
  // How long a session lingers after its last send before closing its books
  // (must cover the receiver's recovery_give_up window so in-flight
  // recoveries either land or are declared lost first).
  SimDuration linger = msec(1500);
  exp::WanScenarioParams scenario;
  // Sharding (same contract as ShardedRunParams): 0 = one shard per
  // (DC1, DC2) group. Sketch contents depend on num_shards (merge order);
  // totals do not.
  std::size_t num_shards = 0;
  unsigned num_threads = 0;  // 0 = JQOS_SIM_THREADS / hardware concurrency.
  std::size_t sketch_k = 1024;
  // A session counts as succeeded when at least this fraction of its packets
  // was delivered (direct or recovered). The fault benches gate on it: a
  // DC2 crash without failover drags path-switched sessions under the bar.
  double success_delivered_pct = 90.0;
};

struct ChurnTotals {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_completed = 0;
  // Sessions meeting the success_delivered_pct bar.
  std::uint64_t sessions_succeeded = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t delivered_direct = 0;
  std::uint64_t recovered = 0;
  std::uint64_t lost = 0;
  // Flows still registered after the drain; 0 unless the teardown chain
  // leaks (asserted by tests).
  std::uint64_t leaked_flows = 0;

  ChurnTotals& operator+=(const ChurnTotals& o) {
    sessions_opened += o.sessions_opened;
    sessions_completed += o.sessions_completed;
    sessions_succeeded += o.sessions_succeeded;
    packets_sent += o.packets_sent;
    delivered_direct += o.delivered_direct;
    recovered += o.recovered;
    lost += o.lost;
    leaked_flows += o.leaked_flows;
    return *this;
  }
};

// One overlay up/down transition, tagged with the path that observed it.
struct PathFailover {
  std::size_t path = 0;  // Global path index.
  SimTime at = 0;
  bool up = false;
};

struct ChurnResult {
  ChurnTotals totals;
  // Per-session delivery quality, O(1) memory regardless of session count.
  QuantileSketch completion_ms;   // Open -> last delivered packet.
  QuantileSketch delivered_pct;   // Packets delivered (direct+recovered), %.
  QuantileSketch recovery_ms;     // Per recovered packet: detect -> deliver.
  // completion_ms split by whether the session's lifetime overlapped a
  // fault window of the scenario's plan (both empty when the plan is).
  QuantileSketch completion_in_fault_ms;
  QuantileSketch completion_clear_ms;
  // Fault-layer counters merged across shards (see exp::FaultSummary).
  exp::FaultSummary faults;
  // Every overlay up/down transition, sorted by (time, path).
  std::vector<PathFailover> failover_events;
  services::EncoderStats encoder;
  services::RecoveryStatsDc recovery;
  std::uint64_t events = 0;       // Simulator events summed over shards.
  std::size_t shards_used = 0;
  unsigned threads_used = 0;

  // Order-sensitive FNV-1a over every counter and the bit patterns of the
  // sketch quantiles: two runs agree on the fingerprint iff they agree on
  // all reported results bit-for-bit. The determinism tests compare this
  // across thread counts and event-queue backends at fixed num_shards.
  std::uint64_t fingerprint() const;
};

// Runs the churn workload. Shards are built and run in parallel (same
// partition as ShardedRunner: exp::plan_shards) and merged in shard-index
// order. Deterministic for fixed (config, num_shards) regardless of
// num_threads.
ChurnResult run_churn(const ChurnConfig& config);

}  // namespace jqos::workload
