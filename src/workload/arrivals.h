// Session arrival processes for the churn workload.
//
// Sessions on a wide-area path do not arrive on a grid. The classic memoryless
// model is Poisson (exponential inter-arrival gaps); measured arrival
// processes are often burstier, with heavy-tailed gaps -- long quiet spells
// punctuated by clumps. ArrivalProcess generates inter-arrival gaps for
// either regime, parameterized so that every kind matches the SAME mean rate:
// swapping kPoisson for kPareto changes burstiness, never offered load.
//
// All draws come from the caller-supplied Rng, so a process seeded from a
// path's stable identity (Rng::derive) produces the same arrival sequence in
// every sharding and thread count -- the property the churn determinism
// tests pin.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace jqos::workload {

enum class ArrivalKind : std::uint8_t {
  kPoisson,    // Exponential gaps (memoryless).
  kPareto,     // Heavy-tailed gaps: clumps and long silences.
  kLognormal,  // Moderately heavy-tailed; log-scale Gaussian gaps.
};

struct ArrivalParams {
  ArrivalKind kind = ArrivalKind::kPoisson;
  // Aggregate session arrival rate across the whole scenario; the churn
  // runner divides it evenly over the paths.
  double sessions_per_sec = 100.0;
  // Pareto shape (> 1 so the mean exists; 1 < alpha < 2 gives the
  // infinite-variance burstiness measured arrival processes show).
  double pareto_alpha = 1.5;
  // Lognormal shape: sigma of the underlying normal.
  double lognormal_sigma = 1.0;
};

// Gap generator for one path at one mean rate. Stateless beyond the Rng.
class ArrivalProcess {
 public:
  // `rate_per_sec` is this process's own mean arrival rate (the runner
  // passes aggregate/num_paths). Throws std::invalid_argument if the rate
  // is not positive or the shape parameters are out of range.
  ArrivalProcess(const ArrivalParams& params, double rate_per_sec, Rng rng);

  // Next inter-arrival gap, in seconds (> 0). E[gap] == 1/rate for every
  // ArrivalKind (mean-matched parameterization; see .cc).
  double next_gap();

  double rate_per_sec() const { return rate_; }

 private:
  ArrivalParams params_;
  double rate_;
  Rng rng_;
  // Precomputed mean-matching parameters.
  double pareto_xm_ = 0.0;
  double lognormal_mu_ = 0.0;
};

}  // namespace jqos::workload
