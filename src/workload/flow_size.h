// CDF-driven flow (session) sizes for the churn workload.
//
// Real WAN applications do not send fixed-size flows: web transfers are
// heavy-tailed, video calls cluster by call length, bulk TCP spans orders of
// magnitude. FlowSizeDist captures an empirical size distribution as a
// piecewise-linear CDF and samples it by inverse transform, so a churn run
// can be driven either by one of the built-in application mixes or by a
// measured CDF loaded from a file.
//
// The file format is the classic traffic-generator one -- one "<bytes>
// <cumulative_percent>" pair per line, '#' comments allowed -- so published
// workload CDFs (web search, data mining, Hadoop) drop in unmodified.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace jqos::workload {

// One knot of the piecewise-linear CDF: P(size <= bytes) == cum.
struct CdfPoint {
  double bytes = 0.0;
  double cum = 0.0;  // Cumulative probability in [0, 1]; last point is 1.
};

// Built-in application mixes (calibrated shapes, not measured datasets):
//  kVideoCall   -- call payloads: tens of KB to a few MB, mild tail.
//  kWebTransfer -- web objects: mostly small, heavy upper tail.
//  kBulkTcp     -- backup/replication: large, spanning KB to tens of MB.
enum class AppMix : std::uint8_t { kVideoCall, kWebTransfer, kBulkTcp };

class FlowSizeDist {
 public:
  // Builds from explicit knots. Requires at least two points with strictly
  // increasing bytes and non-decreasing cum reaching 1.0 (within 1e-6; the
  // last point is normalized to exactly 1). Throws std::invalid_argument.
  static FlowSizeDist from_points(std::vector<CdfPoint> points);

  // Loads "<bytes> <cumulative_percent>" lines (percent in [0, 100]).
  // Blank lines and '#' comments are skipped. Throws std::runtime_error on
  // unreadable files or malformed lines.
  static FlowSizeDist from_file(const std::string& path);

  static FlowSizeDist app_mix(AppMix mix);

  // Inverse-transform sample: draws u ~ U[0,1) and interpolates the CDF.
  // Deterministic given the Rng state; never returns less than the first
  // knot's bytes.
  double sample(Rng& rng) const;

  // Mean of the piecewise-linear distribution (exact, not sampled).
  double mean_bytes() const;

  const std::vector<CdfPoint>& points() const { return points_; }

 private:
  std::vector<CdfPoint> points_;
};

}  // namespace jqos::workload
