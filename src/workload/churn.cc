#include "workload/churn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/obj_pool.h"
#include "common/parallel.h"
#include "exp/sharded_runner.h"
#include "geo/path_dataset.h"
#include "netsim/event_queue.h"

namespace jqos::workload {
namespace {

// Per-packet classification codes inside one session, mirroring
// exp::Outcome semantics (pending/direct/recovered/lost).
constexpr std::uint8_t kPending = 0;
constexpr std::uint8_t kDirect = 1;
constexpr std::uint8_t kRecovered = 2;
constexpr std::uint8_t kLost = 3;

struct SessionState {
  std::size_t path = 0;
  SimTime opened_at = 0;
  SimTime last_delivery = 0;  // Latest in-time delivery (direct or recovered).
  std::uint32_t total = 0;    // Packets this session sends.
  std::uint32_t direct = 0;
  std::uint32_t recovered = 0;
  std::uint32_t lost = 0;
  // Per-packet codes indexed by the flow's sequence number. Pooled: a soak
  // opens and closes millions of sessions, and recycling the vector's
  // capacity keeps session open/close off the global allocator (the buffer
  // returns to the engine's pool when the session is erased).
  common::ObjPool<std::vector<std::uint8_t>>::Handle outcome;
};

// One shard's churn workload: owns the ScenarioShard, drives arrivals,
// sends, classifies deliveries, and finalizes/tears down sessions. All
// events live in the shard's own Simulator, so an engine is fully
// independent of every other engine and may run on any thread.
class ChurnShardEngine {
 public:
  ChurnShardEngine(std::vector<exp::IndexedPath> plan, const ChurnConfig& cfg,
                   const FlowSizeDist& sizes, netsim::EvqBackend backend,
                   double per_path_rate)
      : cfg_(cfg),
        sizes_(sizes),
        shard_(std::move(plan), cfg.scenario, backend),
        completion_ms(cfg.sketch_k),
        delivered_pct(cfg.sketch_k),
        recovery_ms(cfg.sketch_k),
        completion_in_fault_ms(cfg.sketch_k),
        completion_clear_ms(cfg.sketch_k),
        fault_windows_(cfg.scenario.faults.windows()),
        send_gap_(std::max<SimDuration>(1, sec_f(1.0 / cfg.packets_per_second))) {
    // The build-time long-lived flows are the figure scenarios' workload,
    // not ours: tear them down so the shard starts with zero registered
    // flows and every flow observed below is a churn session.
    for (std::size_t i = 0; i < shard_.path_count(); ++i) {
      shard_.close_session(i, shard_.path(i).flow);
    }
    for (std::size_t i = 0; i < shard_.path_count(); ++i) {
      // Dispatch deliveries by flow id: the default recorder assumes the
      // single build-time flow, but churn multiplexes many concurrent
      // sessions over each path's receiver.
      shard_.path(i).receiver->set_delivery_handler(
          [this](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
            on_delivery(rec);
          });
      // Every random stream is derived from the scenario seed and the
      // path's GLOBAL index -- never from shard composition or thread
      // interleaving -- so the whole arrival/size sequence is fixed up
      // front (the shard determinism contract, scenario.h).
      const std::uint64_t gi = shard_.path(i).global_index;
      arrivals_.emplace_back(
          cfg.arrivals, per_path_rate,
          Rng(Rng::derive(Rng::derive(cfg.scenario.seed, "churn-arrival"), gi)));
      size_rngs_.emplace_back(
          Rng::derive(Rng::derive(cfg.scenario.seed, "churn-size"), gi));
    }
    // Lane mode: session bookkeeping (open/finalize/close, the active_ map,
    // engine-global sketches) runs in the SERIAL lane at barriers, while
    // send chains and delivery classification run in each path's endpoint
    // lane. finalize crosses lane -> serial through a per-path channel, so
    // its barrier order is canonical in (time, global path index); recovery
    // sketch adds happen in path lanes, so they go to per-path sketches
    // merged in path order after the run (lanes off keeps the original
    // single-sketch add order, byte-identical to prior releases).
    if (shard_.lanes_used() > 0) {
      path_recovery_ms_.assign(shard_.path_count(), QuantileSketch(cfg.sketch_k));
      serial_ch_.resize(shard_.path_count());
      for (std::size_t i = 0; i < shard_.path_count(); ++i) {
        serial_ch_[i] = &shard_.sim().make_channel(
            (static_cast<std::uint64_t>(shard_.path(i).global_index) << 3) | 4,
            netsim::Simulator::kSerialLane, cfg_.linger);
      }
    }
  }

  void run() {
    end_ = shard_.sim().now() + cfg_.duration;
    {
      // Arrival chains drive open_session/registry mutations: serial lane
      // (a no-op scope when lanes are off).
      const netsim::Simulator::LaneScope serial(shard_.sim(),
                                                netsim::Simulator::kSerialLane);
      for (std::size_t i = 0; i < shard_.path_count(); ++i) schedule_arrival(i);
    }
    // Run to EMPTY, not to a deadline: arrivals stop at end_, send chains
    // and finalize events are finite, recovery traffic and service timers
    // self-terminate once the last session closes.
    shard_.sim().run();
    shard_.flush_encoders();
    shard_.sim().run();
    for (QuantileSketch& s : path_recovery_ms_) recovery_ms.merge(s);
    totals.leaked_flows =
        shard_.registered_flows() + static_cast<std::uint64_t>(active_.size());
  }

  ChurnConfig cfg_;
  const FlowSizeDist& sizes_;
  exp::ScenarioShard shard_;

  // Results, merged by run_churn in shard-index order.
  ChurnTotals totals;
  QuantileSketch completion_ms;
  QuantileSketch delivered_pct;
  QuantileSketch recovery_ms;
  QuantileSketch completion_in_fault_ms;
  QuantileSketch completion_clear_ms;

 private:
  void schedule_arrival(std::size_t path_index) {
    const SimDuration gap =
        std::max<SimDuration>(1, sec_f(arrivals_[path_index].next_gap()));
    if (shard_.sim().now() + gap >= end_) return;  // Chain terminates.
    shard_.sim().after(gap, [this, path_index] {
      start_session(path_index);
      schedule_arrival(path_index);
    });
  }

  void start_session(std::size_t path_index) {
    const FlowId flow = shard_.open_session(path_index);
    const double bytes = sizes_.sample(size_rngs_[path_index]);
    const double payload = static_cast<double>(cfg_.payload_bytes);
    const std::uint32_t total = static_cast<std::uint32_t>(std::clamp<double>(
        std::ceil(bytes / payload), 1.0, static_cast<double>(cfg_.max_session_packets)));

    SessionState& s = active_[flow];
    s.path = path_index;
    s.opened_at = shard_.sim().now();
    s.total = total;
    s.outcome = outcome_pool_.acquire();
    s.outcome->assign(total, kPending);
    ++totals.sessions_opened;
    // The send chain belongs to the path's endpoint lane from here on: the
    // first send fires synchronously (lanes are parked while serial events
    // run, so touching the sender is safe) and the chain's timers land in
    // the lane's queue.
    const netsim::Simulator::LaneScope scope(shard_.sim(),
                                             shard_.lane_of_path(path_index));
    send_next(flow, 0);
  }

  void send_next(FlowId flow, std::uint32_t k) {
    auto it = active_.find(flow);
    if (it == active_.end()) return;  // Finalized early; nothing to send.
    const SessionState& s = it->second;
    shard_.path(s.path).sender->send(flow, cfg_.payload_bytes);
    if (k + 1 < s.total) {
      shard_.sim().after(send_gap_, [this, flow, next = k + 1] { send_next(flow, next); });
    } else {
      // Books close after the linger window: long enough for the receiver's
      // recovery_give_up to either deliver or declare every hole lost.
      // finalize mutates engine-global state, so in lane mode it crosses
      // back to the serial lane through this path's channel.
      if (!serial_ch_.empty()) {
        serial_ch_[s.path]->schedule(shard_.sim().now() + cfg_.linger,
                                     [this, flow] { finalize(flow); });
      } else {
        shard_.sim().after(cfg_.linger, [this, flow] { finalize(flow); });
      }
    }
  }

  void on_delivery(const endpoint::DeliveryRecord& rec) {
    auto it = active_.find(rec.flow);
    if (it == active_.end()) return;  // Record for an already-closed session.
    SessionState& s = it->second;
    if (rec.seq >= s.outcome->size()) return;
    std::uint8_t& o = (*s.outcome)[rec.seq];

    if (rec.late_direct) {
      // The direct copy arrived after all: not a path loss (same
      // reclassification the figure scenarios apply).
      if (o == kRecovered) {
        o = kDirect;
        --s.recovered;
        ++s.direct;
      }
      return;
    }
    if (rec.lost) {
      if (o == kPending) {
        o = kLost;
        ++s.lost;
      }
      return;
    }
    if (rec.recovered) {
      double ms = 0.0;
      if (rec.detected_missing_at > 0) {
        ms = to_ms(rec.delivered_at - rec.detected_missing_at);
        (path_recovery_ms_.empty() ? recovery_ms : path_recovery_ms_[s.path]).add(ms);
      }
      if (o != kPending) return;
      // Paper's success criterion: recovery beyond give_up_rtts direct-path
      // RTTs counts as a loss.
      const exp::PathRuntime& rt = shard_.path(s.path);
      if (ms <= rt.give_up_rtts * rt.rtt_ms) {
        o = kRecovered;
        ++s.recovered;
        s.last_delivery = std::max(s.last_delivery, rec.delivered_at);
      } else {
        o = kLost;
        ++s.lost;
      }
      return;
    }
    if (o == kPending) {
      o = kDirect;
      ++s.direct;
      s.last_delivery = std::max(s.last_delivery, rec.delivered_at);
    }
  }

  void finalize(FlowId flow) {
    auto it = active_.find(flow);
    if (it == active_.end()) return;
    SessionState& s = it->second;
    // Ground truth: every sequence number with no delivery record by the
    // end of the linger window is a loss (tail losses the receiver never
    // distinguished from a finished stream).
    for (std::uint8_t& o : *s.outcome) {
      if (o == kPending) {
        o = kLost;
        ++s.lost;
      }
    }
    totals.packets_sent += s.total;
    totals.delivered_direct += s.direct;
    totals.recovered += s.recovered;
    totals.lost += s.lost;
    ++totals.sessions_completed;
    const double completion =
        s.last_delivery > 0 ? to_ms(s.last_delivery - s.opened_at) : 0.0;
    const double pct = 100.0 * static_cast<double>(s.direct + s.recovered) /
                       static_cast<double>(s.total);
    completion_ms.add(completion);
    delivered_pct.add(pct);
    if (pct >= cfg_.success_delivered_pct) ++totals.sessions_succeeded;
    if (!fault_windows_.empty()) {
      // A session is "in fault" when its lifetime overlapped any window of
      // the plan, regardless of which entity the fault hit: the split is a
      // coarse blast-radius lens, not a causal attribution.
      const SimTime closed = shard_.sim().now();
      bool in_fault = false;
      for (const netsim::OutageWindow& w : fault_windows_) {
        if (s.opened_at < w.end && closed > w.start) {
          in_fault = true;
          break;
        }
      }
      (in_fault ? completion_in_fault_ms : completion_clear_ms).add(completion);
    }
    const std::size_t path_index = s.path;
    active_.erase(it);
    // Tear the session down through every layer; per-flow state anywhere in
    // the stack after this point is a leak (O(active sessions) contract).
    shard_.close_session(path_index, flow);
  }

  std::vector<netsim::OutageWindow> fault_windows_;
  std::vector<ArrivalProcess> arrivals_;  // Indexed like shard_.path(i).
  std::vector<Rng> size_rngs_;
  // Lane mode only (both empty otherwise): per-path recovery sketches,
  // merged into recovery_ms in path order; per-path lane->serial channels
  // carrying finalize events.
  std::vector<QuantileSketch> path_recovery_ms_;
  std::vector<netsim::Simulator::Channel*> serial_ch_;
  // Session open/close runs in the serial lane, so one engine-wide pool of
  // outcome vectors sees no contention; its byte bound keeps a bulk-mix
  // burst from pinning memory past the soak's concurrency high-water.
  common::ObjPool<std::vector<std::uint8_t>> outcome_pool_;
  std::unordered_map<FlowId, SessionState> active_;
  SimTime end_ = 0;
  SimDuration send_gap_;
};

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
}

std::uint64_t double_bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

void fnv_mix_sketch(std::uint64_t& h, const QuantileSketch& s) {
  fnv_mix(h, s.count());
  fnv_mix(h, double_bits(s.min()));
  fnv_mix(h, double_bits(s.max()));
  for (double q : {0.5, 0.99, 0.999}) fnv_mix(h, double_bits(s.quantile(q)));
}

}  // namespace

std::uint64_t ChurnResult::fingerprint() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint64_t v :
       {totals.sessions_opened, totals.sessions_completed, totals.sessions_succeeded,
        totals.packets_sent, totals.delivered_direct, totals.recovered, totals.lost,
        totals.leaked_flows}) {
    fnv_mix(h, v);
  }
  fnv_mix_sketch(h, completion_ms);
  fnv_mix_sketch(h, delivered_pct);
  fnv_mix_sketch(h, recovery_ms);
  fnv_mix_sketch(h, completion_in_fault_ms);
  fnv_mix_sketch(h, completion_clear_ms);
  for (std::uint64_t v :
       {faults.link_fault_drops, faults.dc_fault_dropped, faults.total_dc_crashes(),
        faults.failovers, faults.reengages, faults.probes_sent, faults.nacks_suppressed,
        faults.failover_direct_sent, faults.cloud_suppressed, faults.flushes_suppressed}) {
    fnv_mix(h, v);
  }
  for (const PathFailover& ev : failover_events) {
    fnv_mix(h, static_cast<std::uint64_t>(ev.path));
    fnv_mix(h, static_cast<std::uint64_t>(ev.at));
    fnv_mix(h, ev.up ? 1u : 0u);
  }
  for (std::uint64_t v :
       {encoder.data_packets, encoder.in_batches, encoder.cross_batches,
        encoder.coded_sent, encoder.timer_flushes, encoder.single_packet_evictions,
        encoder.full_scan_flushes, encoder.unknown_flow, encoder.flow_departures}) {
    fnv_mix(h, v);
  }
  for (std::uint64_t v :
       {recovery.nacks, recovery.nack_keys, recovery.in_stream_served,
        recovery.coop_ops, recovery.coop_success, recovery.recovered_sent,
        recovery.nack_confirms, recovery.batches_stored, recovery.batches_expired}) {
    fnv_mix(h, v);
  }
  fnv_mix(h, events);
  return h;
}

ChurnResult run_churn(const ChurnConfig& user_config) {
  // Per-packet delay Samples at the receivers grow without bound over a
  // soak; the sketches carry the same information in O(1) memory.
  ChurnConfig config = user_config;
  config.scenario.record_delay_samples = false;

  // Geography drawn from its own derived stream: a pure function of the
  // scenario seed, shared by every sharding of the same config.
  Rng geo_rng(Rng::derive(config.scenario.seed, "churn-paths"));
  auto paths = geo::planetlab_paths(config.num_pairs, geo_rng);
  auto plans = exp::plan_shards(paths, config.num_shards);

  const double per_path_rate =
      config.arrivals.sessions_per_sec / static_cast<double>(config.num_pairs);
  const FlowSizeDist sizes = config.cdf_file
                                 ? FlowSizeDist::from_file(*config.cdf_file)
                                 : FlowSizeDist::app_mix(config.mix);
  // Resolve the backend once, on this thread, exactly as ShardedRunner does:
  // workers never consult process-global backend state.
  const netsim::EvqBackend backend = netsim::evq_default_backend();

  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      resolve_sim_threads(config.num_threads), plans.size()));
  std::vector<std::unique_ptr<ChurnShardEngine>> engines(plans.size());
  parallel_for_indexed(plans.size(), threads, [&](std::size_t i) {
    engines[i] = std::make_unique<ChurnShardEngine>(plans[i], config, sizes, backend,
                                                    per_path_rate);
    engines[i]->run();
  });

  // Merge in shard-index order: the result is a pure function of
  // (config, num_shards), independent of which thread ran which shard.
  ChurnResult r;
  r.completion_ms = QuantileSketch(config.sketch_k);
  r.delivered_pct = QuantileSketch(config.sketch_k);
  r.recovery_ms = QuantileSketch(config.sketch_k);
  r.completion_in_fault_ms = QuantileSketch(config.sketch_k);
  r.completion_clear_ms = QuantileSketch(config.sketch_k);
  for (const auto& e : engines) {
    r.totals += e->totals;
    r.completion_ms.merge(e->completion_ms);
    r.delivered_pct.merge(e->delivered_pct);
    r.recovery_ms.merge(e->recovery_ms);
    r.completion_in_fault_ms.merge(e->completion_in_fault_ms);
    r.completion_clear_ms.merge(e->completion_clear_ms);
    r.faults += e->shard_.fault_summary();
    for (std::size_t p = 0; p < e->shard_.path_count(); ++p) {
      const exp::PathRuntime& rt = e->shard_.path(p);
      for (const exp::FailoverEvent& ev : rt.failover_events) {
        r.failover_events.push_back(PathFailover{rt.global_index, ev.at, ev.up});
      }
    }
    r.encoder += e->shard_.encoder_totals();
    r.recovery += e->shard_.recovery_totals();
    r.events += e->shard_.sim().events_processed();
  }
  // Sorted by (time, path): a stable order that does not depend on which
  // shard a path landed in.
  std::sort(r.failover_events.begin(), r.failover_events.end(),
            [](const PathFailover& a, const PathFailover& b) {
              return a.at != b.at ? a.at < b.at : a.path < b.path;
            });
  r.shards_used = plans.size();
  r.threads_used = threads;
  return r;
}

}  // namespace jqos::workload
