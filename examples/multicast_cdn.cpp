// Multicast example: the two multicast designs of Figure 3 side by side.
//
//  (c) cloud multicast  -- the sender ships one stream to the DC, whose
//      forwarding service fans it out to every receiver (leveraging DC
//      egress bandwidth; costs one DC egress per receiver).
//  (d) hybrid multicast -- the sender multicasts over the public Internet
//      itself and caches one copy at the DC; receivers repair their own
//      losses with pulls (cheap: DC egress only on loss).
#include <cstdio>
#include <memory>
#include <vector>

#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/caching/caching_service.h"
#include "services/forwarding/forwarding_service.h"

using namespace jqos;

namespace {
constexpr int kReceivers = 8;
constexpr int kPackets = 2000;
}  // namespace

int main() {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(5);

  overlay::DataCenter dc(net, 0, "dc-edge");
  auto fwd = std::make_shared<services::ForwardingService>();
  auto cache = std::make_shared<services::CachingService>(sec(60));
  dc.install(fwd);
  dc.install(cache);

  endpoint::Sender sender(net);
  net.add_link(sender.id(), dc.id(), netsim::make_fixed_latency(msec(10)),
               netsim::make_no_loss());

  // Receivers: lossy direct links from the sender (for hybrid multicast)
  // and clean links to/from the DC.
  endpoint::ReceiverConfig rc;
  rc.dc2 = dc.id();
  rc.recovery_service = ServiceType::kCache;
  rc.rtt_estimate = msec(80);
  rc.recovery_give_up = sec(1);
  std::vector<std::unique_ptr<endpoint::Receiver>> receivers;
  std::vector<NodeId> member_ids;
  for (int i = 0; i < kReceivers; ++i) {
    auto r = std::make_unique<endpoint::Receiver>(net, rc);
    net.add_link(sender.id(), r->id(), netsim::make_fixed_latency(msec(40)),
                 netsim::make_bernoulli_loss(0.02, rng.fork("direct")));
    net.add_link(dc.id(), r->id(), netsim::make_fixed_latency(msec(6)),
                 netsim::make_no_loss());
    net.add_link(r->id(), dc.id(), netsim::make_fixed_latency(msec(6)),
                 netsim::make_no_loss());
    member_ids.push_back(r->id());
    receivers.push_back(std::move(r));
  }

  // ---------- (c) cloud multicast via the forwarding service ----------
  const NodeId group = services::kMulticastBase + 1;
  fwd->set_multicast_group(group, member_ids);
  endpoint::SenderPolicy cloud_mcast;
  cloud_mcast.service = ServiceType::kForward;
  cloud_mcast.send_direct = false;  // One upstream copy only.
  cloud_mcast.dc1 = dc.id();
  cloud_mcast.cloud_final_dst = group;
  sender.register_flow(1, cloud_mcast);
  for (auto& r : receivers) r->expect_flow(1);

  for (int i = 0; i < kPackets; ++i) {
    sim.at(msec(5) * i, [&sender] { sender.send(1, 512); });
  }
  sim.run_until(sec(30));
  const std::uint64_t cloud_egress_after_mcast = dc.egress_bytes();

  std::uint64_t cloud_delivered = 0;
  for (auto& r : receivers) cloud_delivered += r->stats().delivered_direct;
  std::printf("(c) cloud multicast: %d packets -> %d receivers\n", kPackets, kReceivers);
  std::printf("    delivered %llu/%d, DC egress %.1f MB (one copy per receiver)\n\n",
              static_cast<unsigned long long>(cloud_delivered), kPackets * kReceivers,
              static_cast<double>(cloud_egress_after_mcast) / 1e6);

  // ---------- (d) hybrid multicast: Internet + cache repair ----------
  endpoint::SenderPolicy hybrid;
  hybrid.service = ServiceType::kCache;
  hybrid.send_direct = false;  // The direct copies go per receiver below.
  hybrid.dc1 = dc.id();
  hybrid.cloud_final_dst = dc.id();
  sender.register_flow(2, hybrid);
  for (auto& r : receivers) r->expect_flow(2);

  for (int i = 0; i < kPackets; ++i) {
    sim.at(sec(40) + msec(5) * i, [&sender, &net, &receivers] {
      // The "Internet multicast": one direct copy per receiver...
      const SeqNo seq = sender.send(2, 512);
      auto base = std::make_shared<Packet>();
      base->type = PacketType::kData;
      base->flow = 2;
      base->seq = seq;
      base->src = sender.id();
      base->sent_at = net.sim().now();
      base->payload.assign(512, 0);
      for (auto& r : receivers) {
        auto copy = std::make_shared<Packet>(*base);
        copy->dst = r->id();
        copy->final_dst = r->id();
        net.send(sender.id(), copy);
      }
    });
  }
  sim.run_until(sec(100));

  std::uint64_t direct = 0, repaired = 0, lost = 0;
  for (auto& r : receivers) {
    direct += r->stats().delivered_direct;
    repaired += r->stats().delivered_recovered;
    lost += r->stats().losses_given_up;
  }
  // Subtract the phase-(c) deliveries counted above.
  direct -= cloud_delivered;
  std::printf("(d) hybrid multicast: Internet copies + one cached copy at the DC\n");
  std::printf("    direct %llu, repaired from cache %llu, unrecovered %llu\n",
              static_cast<unsigned long long>(direct),
              static_cast<unsigned long long>(repaired),
              static_cast<unsigned long long>(lost));
  std::printf("    DC egress this phase: %.1f MB (only on loss) vs %.1f MB for cloud multicast\n",
              static_cast<double>(dc.egress_bytes() - cloud_egress_after_mcast) / 1e6,
              static_cast<double>(cloud_egress_after_mcast) / 1e6);
  std::printf("    cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(cache->stats().pull_hits),
              static_cast<unsigned long long>(cache->stats().pull_misses));
  return 0;
}
