// Live-runtime example: the J-QoS wire format and caching recovery running
// over REAL UDP sockets on loopback (the paper's user-space proxy mode),
// with a 25% impaired "Internet" leg. No simulator involved.
#include <cstdio>

#include "net/event_loop.h"
#include "net/live_node.h"

using namespace jqos;
using namespace std::chrono_literals;

int main() {
  net::EventLoop loop;
  net::LiveCachingDc dc(loop);
  std::printf("DC cache listening on udp://%s\n", dc.endpoint().to_string().c_str());

  std::uint64_t direct = 0, recovered = 0;
  net::LiveReceiver receiver(loop, /*flow=*/1, dc.endpoint(),
                             [&](const Packet& pkt, bool was_recovered) {
                               (void)pkt;
                               if (was_recovered) {
                                 ++recovered;
                               } else {
                                 ++direct;
                               }
                             });
  std::printf("receiver listening on udp://%s\n", receiver.endpoint().to_string().c_str());

  net::ImpairmentParams impair;
  impair.drop_probability = 0.25;
  impair.delay = 5ms;
  impair.jitter = 3ms;
  net::LiveSender sender(loop, 1, receiver.endpoint(), dc.endpoint(), impair, Rng(99));

  // Stream 300 datagrams; duplicate each to the DC cache; the receiver
  // pulls the holes the impaired direct leg leaves behind.
  const int kPackets = 300;
  for (int i = 0; i < kPackets; ++i) {
    sender.send(std::vector<std::uint8_t>(128, static_cast<std::uint8_t>(i)));
    loop.run_once(2ms);
  }
  // Trailing beacons let the receiver detect the final gap, then drain.
  for (int i = 0; i < 20; ++i) {
    sender.send(std::vector<std::uint8_t>(16, 0xee));
    for (int j = 0; j < 10; ++j) loop.run_once(5ms);
  }
  const auto deadline = net::Clock::now() + 500ms;
  while (net::Clock::now() < deadline) loop.run_once(10ms);

  std::printf("\nlive loopback run (25%% drop + 5-8 ms delay on the direct leg):\n");
  std::printf("  direct deliveries    : %llu\n", static_cast<unsigned long long>(direct));
  std::printf("  recovered via pulls  : %llu\n",
              static_cast<unsigned long long>(recovered));
  std::printf("  direct-leg datagrams dropped by impairment: %llu of %llu\n",
              static_cast<unsigned long long>(sender.direct_stats().dropped),
              static_cast<unsigned long long>(sender.direct_stats().offered));
  std::printf("  DC cache served %llu pulls, holding %zu packets\n",
              static_cast<unsigned long long>(dc.served()), dc.store().size());
  return 0;
}
