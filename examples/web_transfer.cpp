// Web-transfer example: short TCP flows over a bursty-loss path, with and
// without J-QoS below the transport (the Section 6.4 case study). Shows the
// flow-completion-time tail shrinking when J-QoS hides losses from TCP.
#include <cstdio>

#include "app/web.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"

using namespace jqos;

namespace {

Samples run(bool with_jqos, std::size_t requests) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(11);

  auto registry = std::make_shared<services::FlowRegistry>();
  endpoint::Sender server(net);
  std::unique_ptr<overlay::DataCenter> dc1, dc2;
  if (with_jqos) {
    dc1 = std::make_unique<overlay::DataCenter>(net, 0, "dc1");
    dc2 = std::make_unique<overlay::DataCenter>(net, 1, "dc2");
    dc1->install(std::make_shared<services::ForwardingService>());
    dc2->install(std::make_shared<services::ForwardingService>());
    services::CodingParams cp;
    cp.k = 6;
    cp.in_block = 16;  // One in-stream coded packet per TCP window.
    cp.queue_timeout = msec(10);
    dc1->install(std::make_shared<services::CodingEncoderService>(*dc1, cp, registry));
    dc2->install(std::make_shared<services::RecoveryService>(
        *dc2, services::RecoveryParams{}, registry));
  }

  endpoint::ReceiverConfig rc;
  rc.rtt_estimate = msec(200);
  rc.recovery_give_up = msec(250);
  if (dc2) rc.dc2 = dc2->id();
  endpoint::Receiver client(net, rc);

  // Google-study loss model on a 200 ms RTT path.
  net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_google_burst(0.01, 0.5, rng.fork("f")));
  // The thin request/ACK direction sees only light random loss.
  net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_bernoulli_loss(0.002, rng.fork("r")));
  if (dc1) {
    for (auto [a, b, lat] : {std::tuple{server.id(), dc1->id(), msec(15)},
                             std::tuple{dc1->id(), dc2->id(), msec(100)},
                             std::tuple{dc2->id(), client.id(), msec(15)},
                             std::tuple{client.id(), dc2->id(), msec(15)}}) {
      net.add_link(a, b, netsim::make_fixed_latency(lat), netsim::make_no_loss());
    }
  }

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.delays = {.y_ms = 100.0, .delta_s_ms = 15.0, .delta_r_ms = 15.0, .x_ms = 100.0,
                .delta_r_median_ms = 15.0};
  if (with_jqos) {
    req.force_service = ServiceType::kCode;
    req.dc1 = dc1->id();
    req.dc2 = dc2->id();
  } else {
    req.force_service = ServiceType::kNone;
  }

  app::WebWorkloadParams params;
  params.requests = requests;
  params.response_bytes = 50 * 1000;  // The paper's 50 KB responses.
  const app::WebResult result =
      app::run_web_workload(net, server, client, sessions, req, params);
  return result.fct_ms;
}

}  // namespace

int main() {
  const std::size_t requests = 700;
  std::printf("short web transfers (12 B request / 50 KB response, 200 ms RTT,\n");
  std::printf("Google-study loss: p_first=0.01 p_subsequent=0.5), %zu requests each:\n\n",
              requests);

  const Samples plain = run(false, requests);
  const Samples jqos = run(true, requests);

  std::printf("%-22s %8s %8s %8s %10s\n", "", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)");
  std::printf("%-22s %8.0f %8.0f %8.0f %10.0f\n", "TCP over Internet",
              plain.percentile(50), plain.percentile(95), plain.percentile(99),
              plain.max());
  std::printf("%-22s %8.0f %8.0f %8.0f %10.0f\n", "TCP over J-QoS",
              jqos.percentile(50), jqos.percentile(95), jqos.percentile(99), jqos.max());
  std::printf("\nJ-QoS recovers the SYN-ACK / tail losses that otherwise strand TCP in\n");
  std::printf("exponential-backoff timeouts, cutting the p99 tail by %.0f%%.\n",
              100.0 * (1.0 - jqos.percentile(99) / plain.percentile(99)));
  return 0;
}
