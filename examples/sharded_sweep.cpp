// Sharded wide-area sweep: the Figure 8 scenario shape (45 paths through
// the full J-QoS service stack) run on every core via exp::ShardedRunner.
//
//   ./sharded_sweep [--threads N] [--paths N] [--minutes M] [--shards N]
//
// Demonstrates the shard-per-thread API and its determinism contract: run
// it twice with different --threads values and the per-path results and
// totals are byte-identical -- only the wall-clock changes. JQOS_SIM_THREADS
// is honored when --threads is not given.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/sharded_runner.h"

namespace {

// Minimal flag parsing: --name value.
long flag_value(int argc, char** argv, const char* name, long fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atol(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;

  const auto num_paths = static_cast<std::size_t>(flag_value(argc, argv, "--paths", 45));
  const auto threads = static_cast<unsigned>(flag_value(argc, argv, "--threads", 0));
  const auto shards = static_cast<std::size_t>(flag_value(argc, argv, "--shards", 0));
  const auto sim_minutes = flag_value(argc, argv, "--minutes", 10);

  // The Section 6.2 deployment shape: 45 cross-continent paths, ON/OFF CBR,
  // cross + in-stream coding.
  Rng rng(42);
  auto paths = geo::planetlab_paths(num_paths, rng);

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = 42;
  params.coding.k = 6;
  params.coding.cross_coded = 2;
  params.coding.in_block = 5;
  params.coding.in_coded = 1;
  params.coding.queue_timeout = msec(300);
  params.cbr.on_duration = minutes(2);
  params.cbr.mean_off = minutes(3);
  params.cbr.packets_per_second = 20.0;

  exp::ShardedRunParams run_params;
  run_params.num_shards = shards;
  run_params.num_threads = threads;
  exp::ShardedRunner runner(std::move(paths), params, run_params);

  const auto start = std::chrono::steady_clock::now();
  runner.run(minutes(sim_minutes));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::uint64_t delivered = 0, recovered = 0, lost = 0, workload = 0;
  for (std::size_t i = 0; i < runner.path_count(); ++i) {
    const exp::PathRuntime& rt = runner.path(i);
    delivered += rt.delivered_direct;
    recovered += rt.recovered;
    lost += rt.lost;
    workload += rt.outcome.size();
  }

  std::printf("sharded sweep: %zu paths in %zu shards on %u threads\n",
              runner.path_count(), runner.shard_count(), runner.threads_used());
  std::printf("  simulated %ld min, wall %.2f s, %llu events (%.2f Mev/s)\n",
              sim_minutes, wall, static_cast<unsigned long long>(runner.total_events()),
              static_cast<double>(runner.total_events()) / wall / 1e6);
  std::printf("  workload: %llu packets, delivered %llu, recovered %llu, lost %llu\n",
              static_cast<unsigned long long>(workload),
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(recovered),
              static_cast<unsigned long long>(lost));
  const double losses = static_cast<double>(recovered + lost);
  std::printf("  recovery rate: %.1f%%\n",
              losses > 0 ? 100.0 * static_cast<double>(recovered) / losses : 100.0);
  return 0;
}
