// Mobility / DTN example (Figure 3(e)): a mobile sender uploads while the
// receiver is offline; packets wait in the DC cache (the on-path
// rendezvous point) and the receiver pulls them when it comes online --
// without the sender needing to be reachable anymore.
#include <cstdio>

#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/caching/caching_service.h"

using namespace jqos;

int main() {
  netsim::Simulator sim;
  netsim::Network net(sim);

  overlay::DataCenter dc(net, 0, "dc-rendezvous");
  // Long TTL: this is the DTN-style use the paper contrasts with in-memory
  // loss recovery (Section 3.2).
  auto cache = std::make_shared<services::CachingService>(minutes(10));
  dc.install(cache);

  endpoint::Sender mobile(net);
  net.add_link(mobile.id(), dc.id(), netsim::make_fixed_latency(msec(30)),
               netsim::make_no_loss());

  endpoint::ReceiverConfig rc;
  rc.dc2 = dc.id();
  rc.recovery_service = ServiceType::kCache;
  rc.rtt_estimate = msec(60);
  rc.recovery_give_up = minutes(5);
  std::uint64_t pulled = 0;
  endpoint::Receiver receiver(net, rc,
                              [&](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
                                if (rec.recovered) ++pulled;
                              });
  receiver.expect_flow(1);
  net.add_link(dc.id(), receiver.id(), netsim::make_fixed_latency(msec(8)),
               netsim::make_no_loss());
  net.add_link(receiver.id(), dc.id(), netsim::make_fixed_latency(msec(8)),
               netsim::make_no_loss());

  // The mobile sender uploads 500 packets to the rendezvous cache and goes
  // offline. There is deliberately NO direct link to the receiver.
  endpoint::SenderPolicy policy;
  policy.service = ServiceType::kCache;
  policy.send_direct = false;
  policy.dc1 = dc.id();
  policy.cloud_final_dst = dc.id();
  mobile.register_flow(1, policy);
  for (int i = 0; i < 500; ++i) {
    sim.at(msec(20) * i, [&mobile] { mobile.send(1, 800); });
  }

  // Two minutes later the receiver comes online and pulls everything it
  // has not seen (a tail NACK from sequence 0).
  sim.at(minutes(2), [&net, &receiver, &dc] {
    NackInfo info;
    info.tail = true;
    info.expected = 0;
    auto nack = std::make_shared<Packet>();
    nack->type = PacketType::kNack;
    nack->service = ServiceType::kCache;
    nack->flow = 1;
    nack->src = receiver.id();
    nack->dst = dc.id();
    nack->payload = info.serialize();
    net.send(receiver.id(), nack);
  });

  sim.run_until(minutes(3));

  std::printf("mobility / DTN rendezvous via the caching service:\n");
  std::printf("  uploaded while receiver offline: 500 packets\n");
  std::printf("  pulled after coming online     : %llu packets\n",
              static_cast<unsigned long long>(pulled));
  std::printf("  cache served %llu pulls, %llu still stored\n",
              static_cast<unsigned long long>(cache->stats().pull_hits),
              static_cast<unsigned long long>(cache->store().size()));
  std::printf("  the sender was unreachable during delivery -- the DC acted as the\n");
  std::printf("  rendezvous point (i3/NDN/XIA-style indirection, Section 3.2).\n");
  return 0;
}
