// Video-conference example: a Skype-like call riding J-QoS's coding service
// through a mid-call Internet outage (the Section 6.3 scenario), scored
// with the frame-level PSNR model.
#include <cstdio>
#include <unordered_map>

#include "app/psnr.h"
#include "app/video.h"
#include "endpoint/session.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/cbr_app.h"

using namespace jqos;

int main() {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(42);

  overlay::DataCenter dc1(net, 0, "dc1");
  overlay::DataCenter dc2(net, 1, "dc2");
  auto registry = std::make_shared<services::FlowRegistry>();
  dc1.install(std::make_shared<services::ForwardingService>());
  dc2.install(std::make_shared<services::ForwardingService>());
  services::CodingParams coding;
  coding.k = 4;
  coding.cross_coded = 1;  // r = 1/4, as the paper's Skype run uses.
  coding.in_coded = 0;     // Skype has its own FEC (s = 0).
  auto encoder = std::make_shared<services::CodingEncoderService>(dc1, coding, registry);
  dc1.install(encoder);
  services::RecoveryParams rp;
  rp.coop_deadline = msec(250);
  dc2.install(std::make_shared<services::RecoveryService>(dc2, rp, registry));

  endpoint::Sender caller(net);
  endpoint::ReceiverConfig rc;
  rc.dc2 = dc2.id();
  rc.rtt_estimate = msec(100);
  rc.recovery_give_up = sec(2);
  std::unordered_map<SeqNo, app::PacketOutcome> outcomes;
  FlowId call_flow = 0;
  endpoint::Receiver callee(net, rc,
                            [&](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
                              if (rec.flow != call_flow || rec.lost) return;
                              outcomes[rec.seq] = app::PacketOutcome{true, rec.delivered_at};
                            });

  // 50 ms one-way Internet path with a 30 s outage from t = 45 s.
  net.add_link(caller.id(), callee.id(), netsim::make_fixed_latency(msec(50)),
               netsim::make_scheduled_outages(
                   netsim::make_bernoulli_loss(0.002, rng.fork("loss")),
                   {{sec(45), sec(75)}}));
  for (auto [a, b, lat] : {std::tuple{caller.id(), dc1.id(), msec(7)},
                           std::tuple{dc1.id(), dc2.id(), msec(40)},
                           std::tuple{dc2.id(), callee.id(), msec(8)},
                           std::tuple{callee.id(), dc2.id(), msec(8)}}) {
    net.add_link(a, b, netsim::make_fixed_latency(lat), netsim::make_no_loss());
  }

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.force_service = ServiceType::kCode;
  req.dc1 = dc1.id();
  req.dc2 = dc2.id();
  req.delays = {.y_ms = 50.0, .delta_s_ms = 7.0, .delta_r_ms = 8.0, .x_ms = 40.0,
                .delta_r_median_ms = 8.0};
  call_flow = sessions.register_flow(caller, callee, req).flow;

  // Three background flows sharing DC1/DC2 give the encoder cross-stream
  // material (Section 6.3 injects three ~200 Kbps UDP flows).
  std::vector<std::unique_ptr<endpoint::Receiver>> bg_receivers;
  std::vector<std::unique_ptr<transport::CbrApp>> bg_apps;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<endpoint::Receiver>(net, rc);
    net.add_link(caller.id(), r->id(), netsim::make_fixed_latency(msec(50)),
                 netsim::make_bernoulli_loss(0.001, rng.fork("bg")));
    net.add_link(dc2.id(), r->id(), netsim::make_fixed_latency(msec(8)),
                 netsim::make_no_loss());
    net.add_link(r->id(), dc2.id(), netsim::make_fixed_latency(msec(8)),
                 netsim::make_no_loss());
    const FlowId bg_flow = sessions.register_flow(caller, *r, req).flow;
    transport::CbrParams cbr;
    cbr.on_duration = sec(120);
    cbr.mean_off = sec(1);
    cbr.packets_per_second = 50.0;
    cbr.payload_bytes = 500;
    auto app = std::make_unique<transport::CbrApp>(sim, caller, bg_flow, cbr,
                                                   rng.fork("bg-app"));
    app->start(sec(120));
    bg_receivers.push_back(std::move(r));
    bg_apps.push_back(std::move(app));
  }

  // The call itself: 12 fps, 1.5 Mbps, 120 s.
  app::VideoParams vp;
  app::VideoSource video(sim, caller, call_flow, vp, rng.fork("video"));
  video.start(sec(120));
  sim.run_until(sec(130));

  app::PsnrParams pp;
  pp.playout_deadline = sec(1);
  Rng score_rng(7);
  const Samples psnr = app::score_video(video.layout(), vp, outcomes, pp, score_rng);

  std::printf("video call through a 30 s outage (coding service, r=1/4, s=0):\n");
  std::printf("  frames scored : %zu\n", psnr.count());
  std::printf("  PSNR p10/p50/p90: %.1f / %.1f / %.1f dB\n", psnr.percentile(10),
              psnr.percentile(50), psnr.percentile(90));
  std::printf("  recovered packets: %llu (recovery %s)\n",
              static_cast<unsigned long long>(callee.stats().delivered_recovered),
              summarize_percentiles(callee.recovery_delay_ms()).c_str());
  std::printf("  frames >= 35 dB: %.0f%%  (a frozen call would sit near 20 dB)\n",
              100.0 * (1.0 - psnr.cdf_at(35.0)));
  return 0;
}
