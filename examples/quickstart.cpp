// Quickstart: the smallest end-to-end J-QoS program.
//
// Builds a two-DC cloud overlay over a lossy transatlantic Internet path,
// registers one application flow with a latency budget via the register()
// API (the framework picks the cheapest service that fits -- coding), sends
// a CBR stream, and prints what was lost on the Internet path and what
// J-QoS recovered.
#include <cstdio>

#include "endpoint/receiver.h"
#include "endpoint/sender.h"
#include "endpoint/session.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"

using namespace jqos;

int main() {
  // --- infrastructure: simulator, two DCs, the coding service stack ---
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(1);

  overlay::DataCenter dc1(net, 0, "dc-us-east");
  overlay::DataCenter dc2(net, 1, "dc-eu-west");
  auto registry = std::make_shared<services::FlowRegistry>();
  dc1.install(std::make_shared<services::ForwardingService>());
  dc2.install(std::make_shared<services::ForwardingService>());
  services::CodingParams coding;
  coding.k = 4;  // Small demo: batches of up to 4 flows.
  auto encoder = std::make_shared<services::CodingEncoderService>(dc1, coding, registry);
  dc1.install(encoder);
  dc2.install(std::make_shared<services::RecoveryService>(dc2,
                                                          services::RecoveryParams{},
                                                          registry));

  // --- end hosts ---
  endpoint::Sender sender(net);
  endpoint::ReceiverConfig rc;
  rc.dc2 = dc2.id();
  rc.rtt_estimate = msec(110);
  std::uint64_t delivered = 0, recovered = 0, lost = 0;
  endpoint::Receiver receiver(net, rc,
                              [&](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
                                if (rec.lost) {
                                  ++lost;
                                } else if (rec.recovered) {
                                  ++recovered;
                                } else {
                                  ++delivered;
                                }
                              });

  // --- links: a 55 ms lossy Internet path + clean cloud legs ---
  netsim::GilbertElliottParams burst;
  burst.p_good_to_bad = 0.01;  // Lossy demo path: ~2-3% with bursts.
  burst.p_bad_to_good = 0.3;
  burst.loss_in_bad = 0.8;
  net.add_link(sender.id(), receiver.id(), netsim::make_fixed_latency(msec(55)),
               netsim::make_gilbert_elliott(burst, rng.fork("loss")));
  net.add_link(sender.id(), dc1.id(), netsim::make_fixed_latency(msec(6)),
               netsim::make_no_loss());
  net.add_link(dc1.id(), dc2.id(), netsim::make_fixed_latency(msec(42)),
               netsim::make_no_loss());
  net.add_link(dc2.id(), receiver.id(), netsim::make_fixed_latency(msec(8)),
               netsim::make_no_loss());
  net.add_link(receiver.id(), dc2.id(), netsim::make_fixed_latency(msec(8)),
               netsim::make_no_loss());

  // --- the application-facing part: register with a latency budget ---
  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.latency_budget_ms = 150.0;  // Interactive-app budget.
  req.delays = {.y_ms = 55.0, .delta_s_ms = 6.0, .delta_r_ms = 8.0, .x_ms = 42.0,
                .delta_r_median_ms = 8.0};
  req.dc1 = dc1.id();
  req.dc2 = dc2.id();
  const endpoint::Session session = sessions.register_flow(sender, receiver, req);
  std::printf("register(): picked service '%s' (expected delay %.1f ms, relative cost %.2f)\n",
              to_string(session.quote.service), session.quote.expected_delay_ms,
              session.quote.relative_cost);

  // A few sibling flows so cross-stream batches form (the cloud's
  // visibility into concurrent streams is what makes coding cheap).
  std::vector<std::unique_ptr<endpoint::Receiver>> peers;
  for (int i = 0; i < 3; ++i) {
    auto peer = std::make_unique<endpoint::Receiver>(net, rc);
    net.add_link(sender.id(), peer->id(), netsim::make_fixed_latency(msec(55)),
                 netsim::make_bernoulli_loss(0.001, rng.fork("peer")));
    net.add_link(dc2.id(), peer->id(), netsim::make_fixed_latency(msec(8)),
                 netsim::make_no_loss());
    net.add_link(peer->id(), dc2.id(), netsim::make_fixed_latency(msec(8)),
                 netsim::make_no_loss());
    sessions.register_flow(sender, *peer, req);
    peers.push_back(std::move(peer));
  }

  // --- send 20 packets/s for 60 s on every flow ---
  for (FlowId flow = 1; flow <= 4; ++flow) {
    for (int i = 0; i < 1200; ++i) {
      sim.at(msec(50) * i + flow, [&sender, flow] { sender.send(flow, 512); });
    }
  }
  sim.run_until(sec(70));

  std::printf("\nresults for the registered flow:\n");
  std::printf("  delivered on the Internet path : %llu\n",
              static_cast<unsigned long long>(delivered));
  std::printf("  lost there but recovered by J-QoS: %llu\n",
              static_cast<unsigned long long>(recovered));
  std::printf("  unrecovered                     : %llu\n",
              static_cast<unsigned long long>(lost));
  std::printf("  recovery delays: %s\n",
              summarize_percentiles(receiver.recovery_delay_ms()).c_str());
  std::printf("  inter-DC bytes (the judicious part): %llu vs %llu duplicated app bytes\n",
              static_cast<unsigned long long>(dc1.egress_bytes()),
              static_cast<unsigned long long>(dc1.ingress_bytes()));
  return 0;
}
