// Figure 7 reproduction: feasibility of J-QoS services from latency data.
//  (a) end-to-end delivery latency CDF per service
//  (b) recovery delay / RTT CDF for caching and coding
//  (c) end-host -> nearest-DC latency CDF (EU)
//  (d) northern-EU delta under the 2007 / 2014 / 2018 DC catalogs
//
// Flags: --json emits the headline figure metrics as JSON Lines (see
// bench_json.h) for CI row diffing; --quick shrinks the path count.
#include <cstdio>

#include "bench_json.h"
#include "exp/feasibility.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");
  exp::FeasibilityParams params;
  params.num_paths = quick ? 800 : 6250;  // 6250 is the paper's path count.
  if (!json) {
    std::printf("== Figure 7: J-QoS service feasibility (%zu US-East -> EU paths) ==\n",
                params.num_paths);
  }
  const exp::FeasibilityResult r = exp::run_feasibility(params);

  if (json) {
    const auto latency_row = [&](const char* treatment, const Samples& s) {
      bench::JsonRow("fig7_feasibility")
          .add("name", "delivery_latency")
          .add("treatment", treatment)
          .add("paths", static_cast<std::uint64_t>(params.num_paths))
          .add("p50_ms", s.percentile(50))
          .add("p95_ms", s.percentile(95))
          .add("p99_ms", s.percentile(99))
          .emit();
    };
    latency_row("internet", r.internet_ms);
    latency_row("forwarding", r.forwarding_ms);
    latency_row("caching", r.caching_ms);
    latency_row("coding", r.coding_ms);
    bench::JsonRow("fig7_feasibility")
        .add("name", "recovery_over_rtt")
        .add("service", "caching")
        .add("cdf_025", r.caching_recovery_over_rtt.cdf_at(0.25))
        .add("cdf_05", r.caching_recovery_over_rtt.cdf_at(0.5))
        .emit();
    bench::JsonRow("fig7_feasibility")
        .add("name", "recovery_over_rtt")
        .add("service", "coding")
        .add("cdf_025", r.coding_recovery_over_rtt.cdf_at(0.25))
        .add("cdf_05", r.coding_recovery_over_rtt.cdf_at(0.5))
        .emit();
    bench::JsonRow("fig7_feasibility")
        .add("name", "delta_eu")
        .add("cdf_10ms", r.delta_eu_ms.cdf_at(10.0))
        .add("median_ms", r.delta_eu_ms.median())
        .emit();
    bench::JsonRow("fig7_feasibility")
        .add("name", "delta_neu_by_catalog")
        .add("median_2007_ms", r.delta_neu_2007_ms.median())
        .add("median_2014_ms", r.delta_neu_2014_ms.median())
        .add("median_now_ms", r.delta_neu_now_ms.median())
        .emit();
    return 0;
  }

  exp::print_cdf("Fig7a internet one-way delivery latency (ms)", r.internet_ms);
  exp::print_cdf("Fig7a forwarding delivery latency (ms)", r.forwarding_ms);
  exp::print_cdf("Fig7a caching delivery latency (ms)", r.caching_ms);
  exp::print_cdf("Fig7a coding delivery latency (ms)", r.coding_ms);

  exp::print_cdf("Fig7b caching recovery delay / RTT", r.caching_recovery_over_rtt);
  exp::print_cdf("Fig7b coding recovery delay / RTT", r.coding_recovery_over_rtt);

  exp::print_cdf("Fig7c EU host -> nearest DC delta (ms)", r.delta_eu_ms);

  exp::print_cdf("Fig7d N-EU delta, Ireland catalog (2007)", r.delta_neu_2007_ms);
  exp::print_cdf("Fig7d N-EU delta, Frankfurt catalog (2014)", r.delta_neu_2014_ms);
  exp::print_cdf("Fig7d N-EU delta, Stockholm catalog (now)", r.delta_neu_now_ms);

  // Headline claims.
  exp::print_claim("Fig7a forwarding ~ internet median",
                   "cloud overlay does not inflate latency",
                   "fwd p50 = " + exp::Table::num(r.forwarding_ms.percentile(50)) +
                       " ms vs internet p50 = " +
                       exp::Table::num(r.internet_ms.percentile(50)) + " ms");
  exp::print_claim("Fig7a internet long tail",
                   "internet delivery has a long tail vs forwarding",
                   "internet p99-p50 = " +
                       exp::Table::num(r.internet_ms.percentile(99) -
                                       r.internet_ms.percentile(50)) +
                       " ms vs fwd p99-p50 = " +
                       exp::Table::num(r.forwarding_ms.percentile(99) -
                                       r.forwarding_ms.percentile(50)) +
                       " ms");
  exp::print_claim("Fig7a 95% paths <=150ms via caching/coding",
                   "95% of paths deliver within 150 ms",
                   "caching CDF(150ms) = " + exp::Table::num(r.caching_ms.cdf_at(150.0)) +
                       ", coding CDF(150ms) = " + exp::Table::num(r.coding_ms.cdf_at(150.0)));
  exp::print_claim("Fig7b recovery within 0.5 RTT",
                   "95% of recoveries within 0.5x RTT",
                   "caching CDF(0.5) = " +
                       exp::Table::num(r.caching_recovery_over_rtt.cdf_at(0.5)) +
                       ", coding CDF(0.5) = " +
                       exp::Table::num(r.coding_recovery_over_rtt.cdf_at(0.5)));
  exp::print_claim("Fig7b caching recovers earlier than coding",
                   "caching ~70% within 0.25 RTT, coding ~10%",
                   "caching CDF(0.25) = " +
                       exp::Table::num(r.caching_recovery_over_rtt.cdf_at(0.25)) +
                       ", coding CDF(0.25) = " +
                       exp::Table::num(r.coding_recovery_over_rtt.cdf_at(0.25)));
  exp::print_claim("Fig7c delta small", "55% of paths have delta < 10 ms",
                   "CDF(10ms) = " + exp::Table::num(r.delta_eu_ms.cdf_at(10.0)));
  exp::print_claim("Fig7d delta shrinks over DC generations",
                   "Ireland(2007) > Frankfurt(2014) > Stockholm(now)",
                   "medians " + exp::Table::num(r.delta_neu_2007_ms.median()) + " > " +
                       exp::Table::num(r.delta_neu_2014_ms.median()) + " > " +
                       exp::Table::num(r.delta_neu_now_ms.median()) + " ms");
  return 0;
}
