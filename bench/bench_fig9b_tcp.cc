// Figure 9(b) reproduction: TCP flow completion times for short web
// transfers under the Google-study loss model (p_first = 0.01,
// p_subsequent = 0.5, 200 ms RTT, 12 B request / 50 KB response), with and
// without J-QoS, plus the Section 6.4 selective-duplication experiment
// (SYN-ACK-only duplication).
//
// On top of the four treatment cases, the bench sweeps the full congestion
// control x queue discipline matrix ({reno, rack, bbr} x {taildrop, red,
// codel}) over a finite-bandwidth bottleneck, reporting FCT percentiles,
// retransmissions, ECN marks, and queue drops per combination — the
// cross-product the pluggable transport/link policy layers exist for.
//
// Every case is an independent deterministic simulation, so the sweep runs
// one case per worker thread (JQOS_SIM_THREADS controls the pool); rows and
// diagnostics are buffered and printed in fixed order afterwards, keeping
// the output byte-stable for any thread count.
//
// Flags: --requests N (default 2000; the paper uses 10000); --quick shrinks
// to 300 requests; --json emits per-treatment and per-matrix-cell JSON
// Lines rows (FCT percentiles, tail reduction, simulator events/sec) for
// CI diffing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.h"

#include "app/web.h"
#include "common/parallel.h"
#include "exp/report.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/tcp_model.h"

namespace {

using namespace jqos;

enum class Mode { kPlain, kJqosCrwan, kJqosFullForward, kJqosSynAckOnly };

struct CaseRun {
  Samples fct_ms;
  std::size_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t events = 0;
  double wall_sec = 0.0;
  std::string diag;  // Deferred stderr diagnostics (printed in case order).
};

CaseRun run_case(Mode mode, std::size_t requests, std::uint64_t seed) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(seed);

  auto registry = std::make_shared<services::FlowRegistry>();
  endpoint::Sender server(net);
  std::unique_ptr<overlay::DataCenter> dc1, dc2;
  std::shared_ptr<services::ForwardingService> fwd1;
  if (mode != Mode::kPlain) {
    dc1 = std::make_unique<overlay::DataCenter>(net, 0, "dc1");
    dc2 = std::make_unique<overlay::DataCenter>(net, 1, "dc2");
    fwd1 = std::make_shared<services::ForwardingService>();
    dc1->install(fwd1);
    dc2->install(std::make_shared<services::ForwardingService>());
    services::CodingParams cp;
    cp.k = 6;
    cp.cross_coded = 2;
    cp.in_block = 16;  // s = 1/16 for back-to-back TCP windows (Section 5).
    cp.in_coded = 1;
    cp.queue_timeout = msec(10);
    dc1->install(std::make_shared<services::CodingEncoderService>(*dc1, cp, registry));
    services::RecoveryParams rp;
    rp.coop_deadline = msec(150);
    dc2->install(std::make_shared<services::RecoveryService>(*dc2, rp, registry));
  }

  endpoint::ReceiverConfig rc;
  rc.rtt_estimate = msec(200);
  rc.recovery_give_up = msec(250);
  if (dc2) rc.dc2 = dc2->id();
  endpoint::Receiver client(net, rc);

  // Section 6.4 topology: 200 ms end-to-end RTT, 30 ms host-DC RTT legs.
  net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_google_burst(0.01, 0.5, rng.fork("fwd-loss")));
  // The Google burst model describes the data-bearing direction; the thin
  // request/ACK direction sees only light random loss.
  net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_bernoulli_loss(0.002, rng.fork("rev-loss")));
  if (dc1) {
    // Forwarded copies route server -> DC1 -> DC2 -> client.
    fwd1->set_next_hop(client.id(), dc2->id());
    for (auto [a, b, lat] : {std::tuple{server.id(), dc1->id(), msec(15)},
                             std::tuple{dc1->id(), dc2->id(), msec(100)},
                             std::tuple{dc2->id(), client.id(), msec(15)},
                             std::tuple{client.id(), dc2->id(), msec(15)}}) {
      net.add_link(a, b, netsim::make_fixed_latency(lat), netsim::make_no_loss());
    }
  }

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.delays.y_ms = 100.0;
  req.delays.delta_s_ms = 15.0;
  req.delays.delta_r_ms = 15.0;
  req.delays.x_ms = 100.0;
  if (mode == Mode::kPlain) {
    req.force_service = ServiceType::kNone;
  } else {
    // CR-WAN codes every segment; the duplication modes forward copies
    // through the overlay (full, or SYN-ACKs only -- Section 6.4's
    // selective-duplication experiment).
    req.force_service =
        mode == Mode::kJqosCrwan ? ServiceType::kCode : ServiceType::kForward;
    req.dc1 = dc1->id();
    req.dc2 = dc2->id();
    if (mode == Mode::kJqosSynAckOnly) {
      req.duplicate_filter = [](const Packet& pkt) {
        auto seg = transport::TcpSegment::parse(pkt.payload);
        return seg && (seg->flags & transport::TcpSegment::kSyn) &&
               (seg->flags & transport::TcpSegment::kAck);
      };
    }
  }

  app::WebWorkloadParams params;
  params.requests = requests;
  params.response_bytes = 50 * 1000;
  params.request_bytes = 12;
  const auto wall_start = std::chrono::steady_clock::now();
  const app::WebResult result =
      app::run_web_workload(net, server, client, sessions, req, params);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  CaseRun out{result.fct_ms, result.completed, result.server.timeouts,
              result.server.retransmits, sim.events_processed(), wall, {}};
  char line[160];
  std::snprintf(line, sizeof(line),
                "  [mode %d] completed=%zu timeouts=%llu retransmits=%llu\n",
                static_cast<int>(mode), result.completed,
                static_cast<unsigned long long>(result.server.timeouts),
                static_cast<unsigned long long>(result.server.retransmits));
  out.diag = line;
  return out;
}

// One cell of the cc x aqm matrix: plain TCP (no overlay) moving 200 KB
// responses through a 2 Mbps bottleneck whose 32 KB buffer runs the given
// discipline. The transfer is long enough to build a standing queue (the
// regime where the disciplines actually differ: tail drop overflows, RED
// and CoDel mark ECT segments early), and the wire is lossless, so every
// retransmission and mark traces back to queue pressure — the congestion
// controller and the queue policy are the only variables.
struct MatrixRun {
  CaseRun run;
  netsim::LinkStats bottleneck;
  std::uint64_t ecn_echoes = 0;
};

MatrixRun run_matrix_case(transport::CcKind cc, netsim::QdiscKind aqm,
                          std::size_t requests, std::uint64_t seed) {
  netsim::Simulator sim;
  netsim::Network net(sim, {}, seed);  // Seeds RED's mark lottery.
  auto registry = std::make_shared<services::FlowRegistry>();
  endpoint::Sender server(net);
  endpoint::ReceiverConfig rc;
  rc.rtt_estimate = msec(200);
  rc.recovery_give_up = msec(250);
  endpoint::Receiver client(net, rc);

  netsim::QdiscConfig qd;
  qd.kind = aqm;
  qd.limit_bytes = 32 * 1024;  // ~23 packets; well below the ~200 KB needed.
  net.add_link(server.id(), client.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_no_loss(), 2e6, /*preserve_order=*/true, qd);
  net.add_link(client.id(), server.id(), netsim::make_fixed_latency(msec(100)),
               netsim::make_no_loss());

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.force_service = ServiceType::kNone;

  app::WebWorkloadParams params;
  // A quarter of the treatment count: each matrix transfer is 4x the bytes.
  params.requests = requests / 4 > 50 ? requests / 4 : 50;
  params.response_bytes = 200 * 1000;
  params.request_bytes = 12;
  params.tcp.cc = cc;
  params.tcp.ecn = true;

  const auto wall_start = std::chrono::steady_clock::now();
  const app::WebResult result =
      app::run_web_workload(net, server, client, sessions, req, params);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  MatrixRun out;
  out.run = {result.fct_ms, result.completed, result.server.timeouts,
             result.server.retransmits, sim.events_processed(), wall, {}};
  out.bottleneck = net.link(server.id(), client.id())->stats();
  out.ecn_echoes = result.server.ecn_echoes;
  char line[200];
  std::snprintf(line, sizeof(line),
                "  [%s/%s] completed=%zu retransmits=%llu timeouts=%llu marks=%llu "
                "qdrops=%llu\n",
                transport::cc_kind_name(cc), netsim::qdisc_kind_name(aqm),
                result.completed,
                static_cast<unsigned long long>(result.server.retransmits),
                static_cast<unsigned long long>(result.server.timeouts),
                static_cast<unsigned long long>(out.bottleneck.ecn_marked),
                static_cast<unsigned long long>(out.bottleneck.queue_drops));
  out.run.diag = line;
  return out;
}

constexpr transport::CcKind kCcs[] = {transport::CcKind::kReno, transport::CcKind::kRack,
                                      transport::CcKind::kBbrLite};
constexpr netsim::QdiscKind kAqms[] = {netsim::QdiscKind::kTailDrop,
                                       netsim::QdiscKind::kRed, netsim::QdiscKind::kCoDel};

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  std::size_t requests = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
    if (std::strcmp(argv[i], "--quick") == 0) requests = 300;
  }
  if (!json) {
    std::printf("== Figure 9(b): TCP FCT under bursty loss (%zu requests) ==\n", requests);
  }

  // All 13 cases (4 treatments + the 3x3 matrix) are independent sims; run
  // them across the worker pool and report in fixed order afterwards.
  CaseRun treatment[4];
  MatrixRun matrix[9];
  const unsigned threads = resolve_sim_threads(0);
  parallel_for_indexed(13, threads, [&](std::size_t i) {
    if (i < 4) {
      treatment[i] = run_case(static_cast<Mode>(i), requests, 1);
    } else {
      const std::size_t m = i - 4;
      matrix[m] = run_matrix_case(kCcs[m / 3], kAqms[m % 3], requests,
                                  0x9b00 + static_cast<std::uint64_t>(m));
    }
  });
  for (const CaseRun& r : treatment) std::fputs(r.diag.c_str(), stderr);
  for (const MatrixRun& r : matrix) std::fputs(r.run.diag.c_str(), stderr);

  const CaseRun& plain_run = treatment[0];
  const CaseRun& jqos_run = treatment[1];
  const CaseRun& fulldup_run = treatment[2];
  const CaseRun& synack_run = treatment[3];
  const Samples& plain = plain_run.fct_ms;
  const Samples& jqos = jqos_run.fct_ms;
  const Samples& fulldup = fulldup_run.fct_ms;
  const Samples& synack = synack_run.fct_ms;

  if (!json) exp::print_cdf("Fig9b FCT (ms), Internet", plain, 40);
  if (!json) {
    exp::print_cdf("Fig9b FCT (ms), TCP over J-QoS (CR-WAN)", jqos, 40);
    exp::print_cdf("Fig9b FCT (ms), J-QoS full duplication", fulldup, 40);
    exp::print_cdf("Fig9b FCT (ms), J-QoS SYN-ACK-only duplication", synack, 40);

    exp::Table t({"treatment", "p50 (ms)", "p95 (ms)", "p99 (ms)", "p99.9 (ms)", "max (ms)"});
    auto row = [&t](const char* name, const Samples& s) {
      t.add_row({name, exp::Table::num(s.percentile(50), 0),
                 exp::Table::num(s.percentile(95), 0), exp::Table::num(s.percentile(99), 0),
                 exp::Table::num(s.percentile(99.9), 0), exp::Table::num(s.max(), 0)});
    };
    row("Internet", plain);
    row("J-QoS (CR-WAN)", jqos);
    row("J-QoS (full dup)", fulldup);
    row("J-QoS (SYN-ACK only)", synack);
    t.print("Fig9b flow completion time tail");

    exp::print_claim("Fig9b long Internet tail", "tail reaches multiple seconds (~9 s)",
                     "Internet max = " + exp::Table::num(plain.max() / 1000.0, 1) + " s");
  }
  // The losses J-QoS prevents are timeout chains, which live in the tail;
  // single percentiles are noisy there, so compare the conditional tail
  // expectation (mean FCT of the slowest 5% of transfers).
  auto tail_mean = [](const Samples& s) {
    const double cut = s.percentile(95);
    double sum = 0.0;
    std::size_t n = 0;
    for (double v : s.values()) {
      if (v >= cut) {
        sum += v;
        ++n;
      }
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  const double plain_tail = tail_mean(plain);
  const double crwan_cut = 100.0 * (1.0 - tail_mean(jqos) / plain_tail);
  const double full_cut = 100.0 * (1.0 - tail_mean(fulldup) / plain_tail);
  const double synack_cut = 100.0 * (1.0 - tail_mean(synack) / plain_tail);
  if (json) {
    const auto emit = [&](const char* treatment_name, const CaseRun& r, double tail_cut) {
      bench::JsonRow("fig9b_tcp")
          .add("name", "treatment")
          .add("treatment", treatment_name)
          .add("requests", static_cast<std::uint64_t>(requests))
          .add("completed", static_cast<std::uint64_t>(r.completed))
          .add("p50_ms", r.fct_ms.percentile(50))
          .add("p95_ms", r.fct_ms.percentile(95))
          .add("p99_ms", r.fct_ms.percentile(99))
          .add("max_ms", r.fct_ms.max())
          .add("tail_mean_reduction_pct", tail_cut)
          .add("timeouts", r.timeouts)
          .add("retransmits", r.retransmits)
          .add("sim_events", r.events)
          .add("events_per_sec",
               r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec : 0.0)
          .emit();
    };
    emit("internet", plain_run, 0.0);
    emit("crwan", jqos_run, crwan_cut);
    emit("full_dup", fulldup_run, full_cut);
    emit("synack_only", synack_run, synack_cut);
    for (std::size_t m = 0; m < 9; ++m) {
      const MatrixRun& r = matrix[m];
      bench::JsonRow("fig9b_tcp")
          .add("name", "cc_aqm")
          .add("cc", transport::cc_kind_name(kCcs[m / 3]))
          .add("aqm", netsim::qdisc_kind_name(kAqms[m % 3]))
          .add("requests", static_cast<std::uint64_t>(r.run.completed))
          .add("completed", static_cast<std::uint64_t>(r.run.completed))
          .add("p50_ms", r.run.fct_ms.percentile(50))
          .add("p99_ms", r.run.fct_ms.percentile(99))
          .add("max_ms", r.run.fct_ms.max())
          .add("timeouts", r.run.timeouts)
          .add("retransmits", r.run.retransmits)
          .add("ecn_marks", r.bottleneck.ecn_marked)
          .add("ecn_echoes", r.ecn_echoes)
          .add("queue_drops", r.bottleneck.queue_drops)
          .add("max_queue_bytes", r.bottleneck.max_queue_bytes)
          .add("sim_events", r.run.events)
          .add("events_per_sec",
               r.run.wall_sec > 0 ? static_cast<double>(r.run.events) / r.run.wall_sec
                                  : 0.0)
          .emit();
    }
    return 0;
  }
  exp::print_claim("Fig9b J-QoS reduces tail", "J-QoS (CR-WAN) cuts the FCT tail",
                   "tail-mean (slowest 5%) reduction = " + exp::Table::num(crwan_cut, 0) + "%");
  exp::print_claim("Sec6.4 full duplication", "~83% tail reduction",
                   "tail-mean reduction = " + exp::Table::num(full_cut, 0) + "%");
  exp::print_claim("Sec6.4 selective duplication", "SYN-ACK-only cuts tail ~33%",
                   "tail-mean reduction = " + exp::Table::num(synack_cut, 0) + "%");

  exp::Table mt({"cc", "aqm", "p50 (ms)", "p99 (ms)", "retx", "timeouts", "ECN marks",
                 "queue drops"});
  for (std::size_t m = 0; m < 9; ++m) {
    const MatrixRun& r = matrix[m];
    mt.add_row({transport::cc_kind_name(kCcs[m / 3]), netsim::qdisc_kind_name(kAqms[m % 3]),
                exp::Table::num(r.run.fct_ms.percentile(50), 0),
                exp::Table::num(r.run.fct_ms.percentile(99), 0),
                exp::Table::num(static_cast<double>(r.run.retransmits), 0),
                exp::Table::num(static_cast<double>(r.run.timeouts), 0),
                exp::Table::num(static_cast<double>(r.bottleneck.ecn_marked), 0),
                exp::Table::num(static_cast<double>(r.bottleneck.queue_drops), 0)});
  }
  mt.print("congestion control x queue discipline, 2 Mbps / 32 KB bottleneck");
  return 0;
}
