// Figure 10 reproduction: encoding throughput of the CR-WAN prototype as a
// function of encoding threads. Real multithreaded Reed-Solomon encoding
// (the DC1 hot path), measured with google-benchmark.
//
// The paper reports ~65 Kpps per thread and linear scaling to ~500 Kpps at
// 8 threads on their hardware; the property to reproduce is the linear
// shape (absolute Kpps depends on the machine).
//
// Before the thread sweep, a single-threaded per-backend pass forces each
// available GF(256) kernel backend (scalar / ssse3 / avx2) through the same
// encode loop and reports MB/s and Kpps per backend, so the SIMD speedup is
// measured on every run rather than asserted. With --json those rows are
// emitted as JSON Lines (see bench_json.h) and the google-benchmark thread
// sweep is skipped — use --benchmark_format=json for machine-readable
// thread-scaling data.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/alloc_probe.h"
#include "common/packet_pool.h"
#include "common/rng.h"
#include "exp/sharded_runner.h"
#include "fec/gf256_simd.h"
#include "fec/reed_solomon.h"
#include "netsim/network.h"
#include "threads_sweep.h"

namespace {

using namespace jqos;

constexpr std::size_t kPacketBytes = 512;  // The paper's accounting size.
constexpr std::size_t kBlock = 5;          // One coded packet per 5 data packets.

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// One encoder worker's working set: k data shards + 1 parity shard.
struct WorkerState {
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::uint8_t> parity;
  std::vector<const std::uint8_t*> data_ptrs;
  std::uint8_t* parity_ptr[1];

  WorkerState() : data(kBlock, std::vector<std::uint8_t>(kPacketBytes)), parity(kPacketBytes) {
    Rng rng(1234);
    for (auto& shard : data) {
      for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    for (auto& shard : data) data_ptrs.push_back(shard.data());
    parity_ptr[0] = parity.data();
  }
};

// Measures packets/second processed by N independent encoding threads,
// mirroring the paper's load-balanced per-thread streams.
void BM_EncodeThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const fec::ReedSolomon rs(kBlock, 1);
  std::uint64_t total_packets = 0;

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(threads), 0);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkerState ws;
        std::uint64_t blocks = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);
          benchmark::DoNotOptimize(ws.parity.data());
          ++blocks;
        }
        counts[static_cast<std::size_t>(t)] = blocks * kBlock;
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    for (auto& w : workers) w.join();
    std::uint64_t packets = 0;
    for (std::uint64_t c : counts) packets += c;
    total_packets += packets;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(total_packets));
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(total_packets), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["pps_per_thread"] = benchmark::Counter(
      static_cast<double>(total_packets) / threads, benchmark::Counter::kIsRate);
}

// Single-threaded encode throughput of one GF(256) backend: repeatedly
// encodes k=5 blocks of 512 B packets for ~300 ms and reports how many
// megabytes of data packets per second the kernel pushed.
struct BackendPoint {
  fec::GfBackend backend;
  double mbps;
  double kpps;
};

BackendPoint measure_backend(fec::GfBackend backend) {
  if (!fec::gf_set_backend(backend)) return {backend, 0.0, 0.0};
  const fec::ReedSolomon rs(kBlock, 1);
  WorkerState ws;
  using Clock = std::chrono::steady_clock;

  // Warm-up: fault in tables and settle the clock.
  for (int i = 0; i < 50; ++i) rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(300);
  std::uint64_t blocks = 0;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);
      benchmark::DoNotOptimize(ws.parity.data());
    }
    blocks += 64;
  }
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  const double bytes = static_cast<double>(blocks) * kBlock * kPacketBytes;
  return {backend, bytes / secs / 1e6, static_cast<double>(blocks) * kBlock / secs / 1e3};
}

// Runs the per-backend sweep; returns the rows so main can print or emit.
std::vector<BackendPoint> sweep_backends() {
  std::vector<BackendPoint> points;
  for (fec::GfBackend b : fec::gf_available_backends()) {
    points.push_back(measure_backend(b));
  }
  fec::gf_set_backend(fec::gf_best_backend());
  return points;
}

// ---------------- netsim packet-dispatch sweep (event core) ----------------
//
// The coding kernels stopped being the bottleneck after the SIMD work; the
// simulator's event core is what bounds how many packets a figure sweep can
// push. This sweep drives >= 1M simulated packets through the real netsim
// fabric (Network + bandwidth-serialized jittered links, windowed senders)
// once per event-queue backend and reports end-to-end events/sec.
struct NetsimPoint {
  netsim::EvqBackend backend;
  std::uint64_t packets = 0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;  // Global-allocator hits during the timed run.
  double wall_sec = 0.0;

  double events_per_sec() const { return static_cast<double>(events) / wall_sec; }
  double kpps() const { return static_cast<double>(packets) / wall_sec / 1e3; }
  double mpps() const { return kpps() / 1e3; }
  double allocs_per_packet() const {
    return packets > 0 ? static_cast<double>(allocs) / static_cast<double>(packets) : 0.0;
  }
};

NetsimPoint run_netsim_sweep(netsim::EvqBackend backend, std::uint64_t total_packets) {
  netsim::Simulator sim(backend);
  netsim::Network net(sim);
  Rng rng(7);

  constexpr std::size_t kFlows = 16;
  constexpr std::size_t kWindow = 256;  // Outstanding packets per flow.
  const std::uint64_t per_flow = total_packets / kFlows;

  // One pool for the whole sweep (single-threaded dispatch): env-gated, so
  // JQOS_OBJ_POOL=0 measures the pre-pool allocating path for comparison.
  PacketPool pool;

  struct Pump final : netsim::Node {
    netsim::Network& net;
    PacketPool& pool;
    NodeId self;
    NodeId peer = 0;
    FlowId flow = 0;
    std::uint64_t to_send = 0;
    std::uint64_t received = 0;
    SeqNo next_seq = 0;

    Pump(netsim::Network& n, PacketPool& pl, NodeId id) : net(n), pool(pl), self(id) {}
    NodeId id() const override { return self; }
    void send_one() {
      if (to_send == 0) return;
      --to_send;
      net.send(self, make_data_packet(flow, next_seq++, self, peer, 0, 512, &pool));
    }
    void handle_packet(const PacketPtr&) override {}
  };

  struct Sink final : netsim::Node {
    NodeId self;
    Pump* pump = nullptr;
    std::uint64_t received = 0;
    explicit Sink(NodeId id) : self(id) {}
    NodeId id() const override { return self; }
    void handle_packet(const PacketPtr&) override {
      ++received;
      pump->send_one();  // Sliding window: every delivery releases one send.
    }
  };

  std::vector<std::unique_ptr<Pump>> pumps;
  std::vector<std::unique_ptr<Sink>> sinks;
  for (std::size_t f = 0; f < kFlows; ++f) {
    auto pump = std::make_unique<Pump>(net, pool, net.allocate_id());
    auto sink = std::make_unique<Sink>(net.allocate_id());
    pump->peer = sink->id();
    pump->flow = static_cast<FlowId>(f + 1);
    pump->to_send = per_flow;
    sink->pump = pump.get();
    net.attach(*pump);
    net.attach(*sink);
    netsim::JitterParams jp;
    jp.base = msec(20);
    jp.jitter_scale_ms = 2.0;
    // 1 Gbps with ~540 B wire packets: ~4.3 us serialization per packet.
    net.add_link(pump->id(), sink->id(), netsim::make_jitter_latency(jp, rng.fork("j")),
                 netsim::make_no_loss(), 1e9);
    pumps.push_back(std::move(pump));
    sinks.push_back(std::move(sink));
  }

  alloc_probe::reset();
  const auto start = std::chrono::steady_clock::now();
  for (auto& p : pumps) {
    for (std::size_t w = 0; w < kWindow; ++w) p->send_one();
  }
  sim.run();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  NetsimPoint point;
  point.backend = backend;
  for (auto& s : sinks) point.packets += s->received;
  point.events = sim.events_processed();
  point.allocs = alloc_probe::allocations();
  point.wall_sec = secs;
  return point;
}

// ------------- sharded full-stack scenario sweep (whole machine) -----------
//
// The per-core story above (SIMD kernels, ladder event queue) multiplies by
// the core count through exp::ShardedRunner: the fig8-shaped 45-path
// deployment is partitioned into (DC1,DC2) shards and run one-per-thread.
// Merged results are bit-identical across every row (the runner's
// determinism contract); the sweep measures wall-clock scaling only.
bench::ThreadsSweepRow run_sharded_scenario(unsigned threads, SimDuration duration,
                                            double packets_per_second) {
  Rng rng(42);
  auto paths = geo::planetlab_paths(45, rng);

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = 42;
  params.coding.k = 6;
  params.coding.cross_coded = 2;
  params.coding.in_block = 5;
  params.coding.in_coded = 1;
  params.coding.queue_timeout = msec(300);
  params.cbr.on_duration = minutes(2);
  params.cbr.mean_off = minutes(1);
  params.cbr.packets_per_second = packets_per_second;

  exp::ShardedRunParams run_params;
  run_params.num_threads = threads;
  exp::ShardedRunner runner(std::move(paths), params, run_params);

  const auto start = std::chrono::steady_clock::now();
  runner.run(duration);
  bench::ThreadsSweepRow point;
  point.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  point.threads = runner.threads_used();
  point.shards = runner.shard_count();
  point.events = runner.total_events();
  for (std::size_t i = 0; i < runner.path_count(); ++i) {
    point.packets += static_cast<std::uint64_t>(runner.path(i).outcome.size());
  }
  return point;
}

// ---------------- intra-group conservative-lane sweep ----------------------
//
// Sharding stops at the (DC1,DC2) interaction-group boundary: a deployment
// whose paths all share one DC pair is a single shard no matter how many
// cores the machine has. Conservative PDES lanes (docs/DETERMINISM.md,
// netsim::Simulator::configure_lanes) attack exactly that residual serial
// fraction by partitioning the group's endpoint-side work. The sweep runs
// one fig8-shaped single-group deployment per lane count; the determinism
// contract makes every row process the IDENTICAL event set (CI validates
// the equality), so wall-clock is the only thing allowed to vary.
struct LaneSweepRow {
  std::size_t lanes = 0;
  double wall_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t packets = 0;
};

LaneSweepRow run_intra_group_lanes(std::size_t lanes, SimDuration duration,
                                   double packets_per_second) {
  Rng rng(43);
  auto paths = geo::planetlab_paths(8, rng);
  // One (DC1, DC2) pair: the whole deployment is one interaction group.
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = 43;
  params.coding.k = 6;
  params.coding.cross_coded = 2;
  params.coding.in_block = 5;
  params.coding.in_coded = 1;
  params.coding.queue_timeout = msec(300);
  params.cbr.on_duration = minutes(2);
  params.cbr.mean_off = minutes(1);
  params.cbr.packets_per_second = packets_per_second;
  params.lanes = lanes;
  params.lane_threads = 0;  // JQOS_SIM_THREADS / hardware concurrency.

  const auto start = std::chrono::steady_clock::now();
  exp::WanScenario sc(std::move(paths), params);
  sc.run(duration);

  LaneSweepRow row;
  row.lanes = lanes;
  row.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  row.events = sc.sim().events_processed();
  for (std::size_t i = 0; i < sc.path_count(); ++i) {
    row.packets += static_cast<std::uint64_t>(sc.path(i).outcome.size());
  }
  return row;
}

}  // namespace

BENCHMARK(BM_EncodeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

int main(int argc, char** argv) {
  const bool json = jqos::bench::want_json(argc, argv);
  const bool quick = jqos::bench::want_flag(argc, argv, "--quick");

  // Event-core sweep: >= 1M simulated packets through the netsim fabric,
  // once per event-queue backend (the heap row is the regression baseline).
  const std::uint64_t sim_packets = quick ? 100'000 : 1'000'000;
  std::vector<NetsimPoint> netsim_points;
  for (netsim::EvqBackend b : {netsim::EvqBackend::kHeap, netsim::EvqBackend::kLadder}) {
    netsim_points.push_back(run_netsim_sweep(b, sim_packets));
  }

  // Sharded scenario sweep: the full service stack across threads 1/2/4/max.
  const jqos::SimDuration sweep_duration = quick ? jqos::sec(60) : jqos::minutes(8);
  const double sweep_pps = quick ? 40.0 : 100.0;
  std::vector<jqos::bench::ThreadsSweepRow> sharded_points;
  for (unsigned t : jqos::bench::sweep_thread_counts()) {
    sharded_points.push_back(run_sharded_scenario(t, sweep_duration, sweep_pps));
  }

  // Intra-group lane sweep: the single-shard deployment sharding cannot
  // split, at 1/2/4 conservative lanes. Events must match across rows.
  std::vector<LaneSweepRow> lane_points;
  for (std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    lane_points.push_back(run_intra_group_lanes(lanes, sweep_duration, sweep_pps));
  }

  const auto points = sweep_backends();
  double scalar_mbps = 0.0;
  for (const auto& p : points) {
    if (p.backend == fec::GfBackend::kScalar) scalar_mbps = p.mbps;
  }
  if (json) {
    jqos::bench::emit_threads_sweep("fig10_scalability", "sharded_scenario",
                                    sharded_points);
    const double lane_base_wall = lane_points.front().wall_sec;
    for (const auto& p : lane_points) {
      jqos::bench::JsonRow("fig10_scalability")
          .add("name", "intra_group_lanes")
          .add("lanes", static_cast<std::uint64_t>(p.lanes))
          .add("wall_sec", p.wall_sec)
          .add("events", p.events)
          .add("packets", p.packets)
          .add("speedup_vs_1lane", p.wall_sec > 0 ? lane_base_wall / p.wall_sec : 0.0)
          .emit();
    }
    for (const auto& p : netsim_points) {
      jqos::bench::JsonRow row("fig10_scalability");
      row.add("name", "netsim_dispatch")
          .add("backend", netsim::evq_backend_name(p.backend))
          .add("packets", p.packets)
          .add("events", p.events)
          .add("wall_sec", p.wall_sec)
          .add("events_per_sec", p.events_per_sec())
          .add("kpps", p.kpps())
          .add("mpps", p.mpps())
          .add("peak_rss_mb", peak_rss_mb());
      // Omitted under sanitizers (the probe is stubbed) so the regression
      // gate never compares a fake zero against a real count.
      if (alloc_probe::active()) row.add("allocs_per_packet", p.allocs_per_packet());
      row.emit();
    }
    for (const auto& p : points) {
      jqos::bench::JsonRow("fig10_scalability")
          .add("name", "encode_backend")
          .add("backend", fec::gf_backend_name(p.backend))
          .add("k", static_cast<std::uint64_t>(kBlock))
          .add("packet_bytes", static_cast<std::uint64_t>(kPacketBytes))
          .add("mbps", p.mbps)
          .add("kpps", p.kpps)
          .add("speedup_vs_scalar", scalar_mbps > 0 ? p.mbps / scalar_mbps : 0.0)
          .emit();
    }
    // The thread-scaling sweep is google-benchmark's; its own
    // --benchmark_format=json covers the machine-readable case.
    return 0;
  }

  char sweep_header[128];
  std::snprintf(sweep_header, sizeof(sweep_header),
                "== Sharded full-stack scenario: 45 paths, %s simulated per row ==",
                jqos::format_duration(sweep_duration).c_str());
  jqos::bench::print_threads_sweep(sweep_header, sharded_points);
  std::printf("\n");

  std::printf("== Intra-group conservative lanes: 8 paths, ONE (DC1,DC2) group ==\n");
  std::printf("%-6s %12s %12s %10s %14s\n", "lanes", "events", "packets", "wall_s",
              "vs 1 lane");
  const double lane_base_wall = lane_points.front().wall_sec;
  for (const auto& p : lane_points) {
    std::printf("%-6zu %12llu %12llu %10.2f %13.2fx\n", p.lanes,
                static_cast<unsigned long long>(p.events),
                static_cast<unsigned long long>(p.packets), p.wall_sec,
                p.wall_sec > 0 ? lane_base_wall / p.wall_sec : 0.0);
  }
  std::printf("(identical events across rows = the lane determinism contract)\n\n");

  std::printf("== Netsim packet dispatch: %llu simulated packets, per event-queue backend ==\n",
              static_cast<unsigned long long>(sim_packets));
  std::printf("%-8s %12s %12s %14s %12s %12s\n", "backend", "packets", "events",
              "events/sec", "Kpps", "allocs/pkt");
  for (const auto& p : netsim_points) {
    char apx[32];
    if (alloc_probe::active()) {
      std::snprintf(apx, sizeof(apx), "%.4f", p.allocs_per_packet());
    } else {
      std::snprintf(apx, sizeof(apx), "n/a");
    }
    std::printf("%-8s %12llu %12llu %14.0f %12.1f %12s\n",
                netsim::evq_backend_name(p.backend),
                static_cast<unsigned long long>(p.packets),
                static_cast<unsigned long long>(p.events), p.events_per_sec(), p.kpps(),
                apx);
  }
  std::printf("(peak rss %.1f MB; pooled steady state must be ~0 allocs/pkt -- the\n"
              " CI-run steady_state_alloc_test asserts the exact zero)\n\n",
              peak_rss_mb());

  std::printf("== GF(256) backend sweep: single-thread encode, k=5, 512 B packets ==\n");
  std::printf("%-8s %12s %12s %10s\n", "backend", "MB/s", "Kpps", "vs scalar");
  for (const auto& p : points) {
    std::printf("%-8s %12.1f %12.1f %9.2fx\n", fec::gf_backend_name(p.backend), p.mbps,
                p.kpps, scalar_mbps > 0 ? p.mbps / scalar_mbps : 0.0);
  }
  std::printf("(active backend for the thread sweep below: %s)\n\n", fec::gf_backend_name());

  std::printf("== Figure 10: encode throughput vs threads (512 B packets, s = 1/5) ==\n");
  std::printf("Paper (Dell R430, 32 hw threads): ~65 Kpps/thread, ~500 Kpps @ 8 threads;\n");
  std::printf("reproduce the LINEAR SHAPE -- absolute Kpps is hardware-dependent.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
