// Figure 10 reproduction: encoding throughput of the CR-WAN prototype as a
// function of encoding threads. Real multithreaded Reed-Solomon encoding
// (the DC1 hot path), measured with google-benchmark.
//
// The paper reports ~65 Kpps per thread and linear scaling to ~500 Kpps at
// 8 threads on their hardware; the property to reproduce is the linear
// shape (absolute Kpps depends on the machine).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fec/reed_solomon.h"

namespace {

using namespace jqos;

constexpr std::size_t kPacketBytes = 512;  // The paper's accounting size.
constexpr std::size_t kBlock = 5;          // One coded packet per 5 data packets.

// One encoder worker's working set: k data shards + 1 parity shard.
struct WorkerState {
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::uint8_t> parity;
  std::vector<const std::uint8_t*> data_ptrs;
  std::uint8_t* parity_ptr[1];

  WorkerState() : data(kBlock, std::vector<std::uint8_t>(kPacketBytes)), parity(kPacketBytes) {
    Rng rng(1234);
    for (auto& shard : data) {
      for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    for (auto& shard : data) data_ptrs.push_back(shard.data());
    parity_ptr[0] = parity.data();
  }
};

// Measures packets/second processed by N independent encoding threads,
// mirroring the paper's load-balanced per-thread streams.
void BM_EncodeThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const fec::ReedSolomon rs(kBlock, 1);
  std::uint64_t total_packets = 0;

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(threads), 0);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkerState ws;
        std::uint64_t blocks = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);
          benchmark::DoNotOptimize(ws.parity.data());
          ++blocks;
        }
        counts[static_cast<std::size_t>(t)] = blocks * kBlock;
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    for (auto& w : workers) w.join();
    std::uint64_t packets = 0;
    for (std::uint64_t c : counts) packets += c;
    total_packets += packets;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(total_packets));
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(total_packets), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["pps_per_thread"] = benchmark::Counter(
      static_cast<double>(total_packets) / threads, benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_EncodeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

int main(int argc, char** argv) {
  std::printf("== Figure 10: encode throughput vs threads (512 B packets, s = 1/5) ==\n");
  std::printf("Paper (Dell R430, 32 hw threads): ~65 Kpps/thread, ~500 Kpps @ 8 threads;\n");
  std::printf("reproduce the LINEAR SHAPE -- absolute Kpps is hardware-dependent.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
