// Figure 10 reproduction: encoding throughput of the CR-WAN prototype as a
// function of encoding threads. Real multithreaded Reed-Solomon encoding
// (the DC1 hot path), measured with google-benchmark.
//
// The paper reports ~65 Kpps per thread and linear scaling to ~500 Kpps at
// 8 threads on their hardware; the property to reproduce is the linear
// shape (absolute Kpps depends on the machine).
//
// Before the thread sweep, a single-threaded per-backend pass forces each
// available GF(256) kernel backend (scalar / ssse3 / avx2) through the same
// encode loop and reports MB/s and Kpps per backend, so the SIMD speedup is
// measured on every run rather than asserted. With --json those rows are
// emitted as JSON Lines (see bench_json.h) and the google-benchmark thread
// sweep is skipped — use --benchmark_format=json for machine-readable
// thread-scaling data.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "fec/gf256_simd.h"
#include "fec/reed_solomon.h"

namespace {

using namespace jqos;

constexpr std::size_t kPacketBytes = 512;  // The paper's accounting size.
constexpr std::size_t kBlock = 5;          // One coded packet per 5 data packets.

// One encoder worker's working set: k data shards + 1 parity shard.
struct WorkerState {
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::uint8_t> parity;
  std::vector<const std::uint8_t*> data_ptrs;
  std::uint8_t* parity_ptr[1];

  WorkerState() : data(kBlock, std::vector<std::uint8_t>(kPacketBytes)), parity(kPacketBytes) {
    Rng rng(1234);
    for (auto& shard : data) {
      for (auto& b : shard) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    for (auto& shard : data) data_ptrs.push_back(shard.data());
    parity_ptr[0] = parity.data();
  }
};

// Measures packets/second processed by N independent encoding threads,
// mirroring the paper's load-balanced per-thread streams.
void BM_EncodeThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const fec::ReedSolomon rs(kBlock, 1);
  std::uint64_t total_packets = 0;

  for (auto _ : state) {
    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(threads), 0);
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        WorkerState ws;
        std::uint64_t blocks = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);
          benchmark::DoNotOptimize(ws.parity.data());
          ++blocks;
        }
        counts[static_cast<std::size_t>(t)] = blocks * kBlock;
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    for (auto& w : workers) w.join();
    std::uint64_t packets = 0;
    for (std::uint64_t c : counts) packets += c;
    total_packets += packets;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(total_packets));
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(total_packets), benchmark::Counter::kIsRate);
  state.counters["threads"] = threads;
  state.counters["pps_per_thread"] = benchmark::Counter(
      static_cast<double>(total_packets) / threads, benchmark::Counter::kIsRate);
}

// Single-threaded encode throughput of one GF(256) backend: repeatedly
// encodes k=5 blocks of 512 B packets for ~300 ms and reports how many
// megabytes of data packets per second the kernel pushed.
struct BackendPoint {
  fec::GfBackend backend;
  double mbps;
  double kpps;
};

BackendPoint measure_backend(fec::GfBackend backend) {
  if (!fec::gf_set_backend(backend)) return {backend, 0.0, 0.0};
  const fec::ReedSolomon rs(kBlock, 1);
  WorkerState ws;
  using Clock = std::chrono::steady_clock;

  // Warm-up: fault in tables and settle the clock.
  for (int i = 0; i < 50; ++i) rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);

  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(300);
  std::uint64_t blocks = 0;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      rs.encode_into(ws.data_ptrs.data(), kPacketBytes, ws.parity_ptr);
      benchmark::DoNotOptimize(ws.parity.data());
    }
    blocks += 64;
  }
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  const double bytes = static_cast<double>(blocks) * kBlock * kPacketBytes;
  return {backend, bytes / secs / 1e6, static_cast<double>(blocks) * kBlock / secs / 1e3};
}

// Runs the per-backend sweep; returns the rows so main can print or emit.
std::vector<BackendPoint> sweep_backends() {
  std::vector<BackendPoint> points;
  for (fec::GfBackend b : fec::gf_available_backends()) {
    points.push_back(measure_backend(b));
  }
  fec::gf_set_backend(fec::gf_best_backend());
  return points;
}

}  // namespace

BENCHMARK(BM_EncodeThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(3);

int main(int argc, char** argv) {
  const bool json = jqos::bench::want_json(argc, argv);

  const auto points = sweep_backends();
  double scalar_mbps = 0.0;
  for (const auto& p : points) {
    if (p.backend == fec::GfBackend::kScalar) scalar_mbps = p.mbps;
  }
  if (json) {
    for (const auto& p : points) {
      jqos::bench::JsonRow("fig10_scalability")
          .add("name", "encode_backend")
          .add("backend", fec::gf_backend_name(p.backend))
          .add("k", static_cast<std::uint64_t>(kBlock))
          .add("packet_bytes", static_cast<std::uint64_t>(kPacketBytes))
          .add("mbps", p.mbps)
          .add("kpps", p.kpps)
          .add("speedup_vs_scalar", scalar_mbps > 0 ? p.mbps / scalar_mbps : 0.0)
          .emit();
    }
    // The thread-scaling sweep is google-benchmark's; its own
    // --benchmark_format=json covers the machine-readable case.
    return 0;
  }

  std::printf("== GF(256) backend sweep: single-thread encode, k=5, 512 B packets ==\n");
  std::printf("%-8s %12s %12s %10s\n", "backend", "MB/s", "Kpps", "vs scalar");
  for (const auto& p : points) {
    std::printf("%-8s %12.1f %12.1f %9.2fx\n", fec::gf_backend_name(p.backend), p.mbps,
                p.kpps, scalar_mbps > 0 ? p.mbps / scalar_mbps : 0.0);
  }
  std::printf("(active backend for the thread sweep below: %s)\n\n", fec::gf_backend_name());

  std::printf("== Figure 10: encode throughput vs threads (512 B packets, s = 1/5) ==\n");
  std::printf("Paper (Dell R430, 32 hw threads): ~65 Kpps/thread, ~500 Kpps @ 8 threads;\n");
  std::printf("reproduce the LINEAR SHAPE -- absolute Kpps is hardware-dependent.\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
