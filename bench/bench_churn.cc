// Flow-churn soak: the million-session workload the dynamic session layer
// exists for (src/workload). Sessions arrive Poisson, transfer CDF-drawn
// web-mix sizes through the full J-QoS stack, and leave; delivery quality is
// summarized by O(1)-memory quantile sketches.
//
// Two properties are measured, both CI-gated:
//
//  * Throughput: sessions/second of wall-clock across all cores (the
//    "sessions_per_sec" field, tracked by scripts/bench_regression.py).
//  * O(active sessions) memory: the same process runs a 1x soak and then a
//    4x-longer soak; with leak-free teardown, peak RSS barely moves because
//    the active-session population -- not the session COUNT -- bounds the
//    footprint. The "rss_scaling" row reports the ratio (getrusage ru_maxrss
//    is monotone, so the 4x figure already includes the 1x warmup; a leak of
//    per-session state would push the ratio toward 4).
//
// Default mode runs the full >= 1M-session soak; --quick shrinks everything
// for the CI smoke lane. --json emits JSON Lines rows (see bench_json.h).
#include <sys/resource.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "bench_json.h"
#include "common/alloc_probe.h"
#include "workload/churn.h"

namespace {

using namespace jqos;

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

struct SoakSpec {
  const char* mode;
  std::size_t num_pairs;
  double sessions_per_sec;  // Aggregate arrival rate.
  SimDuration duration;
  std::uint32_t max_session_packets;
};

workload::ChurnConfig make_config(const SoakSpec& spec, SimDuration duration) {
  workload::ChurnConfig cfg;
  cfg.num_pairs = spec.num_pairs;
  cfg.duration = duration;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.sessions_per_sec = spec.sessions_per_sec;
  cfg.mix = workload::AppMix::kWebTransfer;
  // MTU-sized payloads at 100 pps: a web-mix session is a short burst, so
  // the longest session (max_session_packets) stays well inside the soak
  // and the active population plateaus early -- the precondition for the
  // peak-RSS comparison to mean anything.
  cfg.payload_bytes = 1472;
  cfg.packets_per_second = 100.0;
  cfg.max_session_packets = spec.max_session_packets;
  cfg.scenario.seed = 42;
  return cfg;
}

workload::ChurnResult run_soak(const SoakSpec& spec, SimDuration duration, bool json,
                               const char* label) {
  // Per-soak global-allocator hits, amortized over every packet the soak
  // pushed. The pooled steady state is literally zero (the CI-run
  // steady_state_alloc_test asserts that); a whole soak also pays one-time
  // scenario construction and pool fill, so the figure here is a small
  // fraction that bench_regression.py gates lower-is-better. Counts are
  // real only when the alloc probe owns the heap (not under sanitizers).
  alloc_probe::reset();
  const auto t0 = std::chrono::steady_clock::now();
  workload::ChurnResult r = workload::run_churn(make_config(spec, duration));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const std::uint64_t allocs = alloc_probe::allocations();
  const double allocs_per_packet =
      r.totals.packets_sent > 0
          ? static_cast<double>(allocs) / static_cast<double>(r.totals.packets_sent)
          : 0.0;
  const double sessions_per_sec =
      wall_s > 0.0 ? static_cast<double>(r.totals.sessions_completed) / wall_s : 0.0;
  const double rss = peak_rss_mb();

  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.fingerprint());
  if (json) {
    bench::JsonRow row("churn");
    row.add("mode", spec.mode)
        .add("soak", label)
        .add("sessions", static_cast<std::uint64_t>(r.totals.sessions_completed))
        .add("packets", static_cast<std::uint64_t>(r.totals.packets_sent))
        .add("sessions_per_sec", sessions_per_sec)
        .add("wall_s", wall_s)
        .add("p50_completion_ms", r.completion_ms.quantile(0.5))
        .add("p99_completion_ms", r.completion_ms.quantile(0.99))
        .add("p999_completion_ms", r.completion_ms.quantile(0.999))
        .add("p50_delivered_pct", r.delivered_pct.quantile(0.5))
        .add("p99_recovery_ms", r.recovery_ms.quantile(0.99))
        .add("leaked_flows", static_cast<std::uint64_t>(r.totals.leaked_flows))
        .add("events", static_cast<std::uint64_t>(r.events))
        .add("shards", static_cast<std::uint64_t>(r.shards_used))
        .add("threads", static_cast<std::uint64_t>(r.threads_used))
        .add("peak_rss_mb", rss)
        .add("fingerprint", fp);
    // Omitted (not zeroed) when the probe is stubbed out, so the regression
    // gate never compares a sanitizer row against a real count.
    if (alloc_probe::active()) row.add("allocs_per_packet", allocs_per_packet);
    row.emit();
  } else {
    char apx[32];
    if (alloc_probe::active()) {
      std::snprintf(apx, sizeof(apx), "%.4f", allocs_per_packet);
    } else {
      std::snprintf(apx, sizeof(apx), "n/a");
    }
    std::printf(
        "churn %-5s soak=%s sessions=%" PRIu64 " (%.0f/s wall) packets=%" PRIu64
        "\n  completion p50/p99/p99.9 = %.1f / %.1f / %.1f ms   delivered p50 = %.2f%%\n"
        "  leaked=%" PRIu64 " events=%" PRIu64 " shards=%zu threads=%u rss=%.1f MB"
        " allocs/pkt=%s fp=%s\n",
        spec.mode, label, r.totals.sessions_completed, sessions_per_sec,
        r.totals.packets_sent, r.completion_ms.quantile(0.5),
        r.completion_ms.quantile(0.99), r.completion_ms.quantile(0.999),
        r.delivered_pct.quantile(0.5), r.totals.leaked_flows, r.events, r.shards_used,
        r.threads_used, rss, apx, fp);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");

  // Full mode: the 4x soak runs ~2000 sessions/s aggregate over 520
  // simulated seconds, crossing the million-session mark. Quick mode keeps
  // the identical structure at CI smoke scale.
  // Durations must comfortably exceed the warmup transient -- longest
  // session + linger + the recovery DC's 10 s batch TTL -- or the 1x peak
  // catches the population mid-ramp and the ratio reads high.
  const SoakSpec spec = quick ? SoakSpec{"quick", 8, 200.0, sec(20), 250}
                              : SoakSpec{"full", 45, 2000.0, sec(130), 300};

  // 1x soak, then a 4x soak in the SAME process: ru_maxrss is monotone, so
  // rss_4x / rss_1x stays near 1 iff memory is O(active sessions).
  run_soak(spec, spec.duration, json, "1x");
  const double rss_1x = peak_rss_mb();
  run_soak(spec, 4 * spec.duration, json, "4x");
  const double rss_4x = peak_rss_mb();
  const double ratio = rss_1x > 0.0 ? rss_4x / rss_1x : 0.0;

  if (json) {
    bench::JsonRow("churn_rss_scaling")
        .add("mode", spec.mode)
        .add("rss_1x_mb", rss_1x)
        .add("rss_4x_mb", rss_4x)
        .add("ratio", ratio)
        .emit();
  } else {
    std::printf("rss scaling: 1x=%.1f MB  4x=%.1f MB  ratio=%.3f (flat == leak-free)\n",
                rss_1x, rss_4x, ratio);
  }
  return 0;
}
