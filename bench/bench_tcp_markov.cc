// Section 6.4 / design-decision D3 ablation: the two-state Markov timeout
// vs a single fixed timeout, measured as NACK traffic to DC2 for a TCP-like
// windowed sender ("the two state approach results in 5x fewer NACKs").
// Flags: --json emits the NACK counts and ratio as JSON Lines rows.
#include <cstdio>

#include "bench_json.h"
#include "endpoint/receiver.h"
#include "exp/report.h"
#include "netsim/network.h"

namespace {

using namespace jqos;

struct NackCounter final : netsim::Node {
  explicit NackCounter(netsim::Network& net) : id_(net.allocate_id()) { net.attach(*this); }
  NodeId id() const override { return id_; }
  void handle_packet(const PacketPtr& pkt) override {
    if (pkt->type == PacketType::kNack) ++nacks;
  }
  NodeId id_;
  std::uint64_t nacks = 0;
};

// A TCP-like sender pattern: windows of back-to-back packets (1 ms apart)
// separated by an RTT of silence, with occasional longer idle periods
// between transfers.
std::uint64_t run_case(bool use_markov, std::uint64_t seed) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(seed);
  NackCounter dc(net);

  endpoint::ReceiverConfig rc;
  rc.dc2 = dc.id();
  rc.rtt_estimate = msec(200);
  rc.use_markov = use_markov;
  rc.single_timeout = msec(25);
  rc.markov.adaptive = true;
  endpoint::Receiver receiver(net, rc);
  receiver.expect_flow(1);
  net.add_link(receiver.id(), dc.id(), netsim::make_fixed_latency(msec(10)),
               netsim::make_no_loss());
  net.add_link(dc.id(), receiver.id(), netsim::make_fixed_latency(msec(10)),
               netsim::make_no_loss());

  // 40 transfers of 6 windows each; windows of 10 segments.
  SimTime t = 0;
  SeqNo seq = 0;
  for (int transfer = 0; transfer < 40; ++transfer) {
    for (int window = 0; window < 6; ++window) {
      for (int i = 0; i < 10; ++i) {
        const SeqNo s = seq++;
        sim.at(t, [&receiver, s, t] {
          auto p = std::make_shared<Packet>();
          p->type = PacketType::kData;
          p->flow = 1;
          p->seq = s;
          p->sent_at = t;
          p->payload.assign(64, 0);
          receiver.handle_packet(p);
        });
        t += msec(1);
      }
      t += msec(190);  // Rest of the RTT: the window gap.
    }
    t += sec(2) + static_cast<SimDuration>(rng.uniform_int(0, msec(500)));
  }
  sim.run_until(t + sec(5));
  return dc.nacks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  if (!json) std::printf("== Ablation D3: two-state Markov timeout vs single timeout ==\n");

  const std::uint64_t markov_nacks = run_case(true, 1);
  const std::uint64_t single_nacks = run_case(false, 1);

  if (json) {
    const double ratio = markov_nacks == 0
                             ? static_cast<double>(single_nacks)
                             : static_cast<double>(single_nacks) /
                                   static_cast<double>(markov_nacks);
    bench::JsonRow("tcp_markov")
        .add("name", "spurious_nacks")
        .add("detector", "markov")
        .add("nacks", markov_nacks)
        .emit();
    bench::JsonRow("tcp_markov")
        .add("name", "spurious_nacks")
        .add("detector", "single_timeout")
        .add("nacks", single_nacks)
        .emit();
    bench::JsonRow("tcp_markov").add("name", "ratio").add("x_fewer_with_markov", ratio).emit();
    return 0;
  }

  exp::Table t({"loss detector", "NACKs sent (no losses present)"});
  t.add_row({"two-state Markov", std::to_string(markov_nacks)});
  t.add_row({"single 25 ms timeout", std::to_string(single_nacks)});
  t.print("spurious NACK traffic for a TCP-like windowed sender");

  const double ratio = markov_nacks == 0
                           ? static_cast<double>(single_nacks)
                           : static_cast<double>(single_nacks) /
                                 static_cast<double>(markov_nacks);
  exp::print_claim("Sec6.4 Markov model reduces overhead",
                   "5x fewer NACKs than a single timeout",
                   exp::Table::num(ratio, 1) + "x fewer NACKs with the Markov model");
  return 0;
}
