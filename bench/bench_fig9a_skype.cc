// Figure 9(a) reproduction: Skype video conferencing over a wide-area path
// with a 30-second outage, under four treatments:
//   Internet   -- direct path only (Skype's own FEC cannot bridge the outage)
//   Fwd        -- full duplication over the cloud path (forwarding service)
//   CR-WAN     -- cross-stream coding with three background flows, s=0
//   CR-WAN-Mob -- CR-WAN with cellular-grade access latency to the DC
// plus the Section 6.3 bandwidth accounting (CR-WAN sends ~13% of the
// bytes forwarding sends across the inter-DC path).
//
// Flags: --json emits per-treatment JSON Lines rows (PSNR, bandwidth ratio,
// simulator events/sec); --quick shrinks the call to a CI smoke preset.
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "bench_json.h"

#include "app/psnr.h"
#include "common/parallel.h"
#include "app/video.h"
#include "endpoint/session.h"
#include "exp/report.h"
#include "netsim/network.h"
#include "overlay/datacenter.h"
#include "services/coding/encoder_dc.h"
#include "services/coding/recovery_dc.h"
#include "services/forwarding/forwarding_service.h"
#include "transport/cbr_app.h"

namespace {

using namespace jqos;

struct SkypeRun {
  Samples psnr;
  std::uint64_t inter_dc_bytes = 0;
  std::uint64_t inter_dc_packets = 0;
  std::uint64_t events = 0;
  double wall_sec = 0.0;
  std::string diag;  // Deferred stderr diagnostics (printed in case order).
};

// One experiment: a video call on a 50 ms one-way path with a 30 s outage
// in the middle of a 120 s call (scaled down under --quick).
SkypeRun run_case(ServiceType service, bool mobile_access, std::uint64_t seed, bool quick) {
  netsim::Simulator sim;
  netsim::Network net(sim);
  Rng rng(seed);

  overlay::DataCenter dc1(net, 0, "dc1");
  overlay::DataCenter dc2(net, 1, "dc2");
  auto registry = std::make_shared<services::FlowRegistry>();
  auto fwd1 = std::make_shared<services::ForwardingService>();
  dc1.install(fwd1);
  dc2.install(std::make_shared<services::ForwardingService>());
  services::CodingParams cp;
  cp.k = 4;
  cp.cross_coded = 1;  // r = 1/4 with k = 4 (Section 6.3).
  cp.in_coded = 0;     // s = 0: Skype runs its own FEC.
  cp.queue_timeout = msec(60);
  auto encoder = std::make_shared<services::CodingEncoderService>(dc1, cp, registry);
  dc1.install(encoder);
  services::RecoveryParams rp;
  rp.coop_deadline = msec(250);
  auto recovery = std::make_shared<services::RecoveryService>(dc2, rp, registry);
  dc2.install(recovery);

  endpoint::Sender sender(net);
  // Background senders sharing DC1 (the three ~200 Kbps UDP flows).
  endpoint::Sender bg_sender(net);

  const SimDuration access = mobile_access ? msec(28) : msec(8);
  endpoint::ReceiverConfig rc;
  rc.dc2 = dc2.id();
  rc.rtt_estimate = msec(100);
  rc.recovery_give_up = sec(2);  // The app tolerates consistent added delay.
  std::unordered_map<SeqNo, app::PacketOutcome> outcomes;
  FlowId video_flow = 0;
  endpoint::Receiver receiver(
      net, rc,
      [&outcomes, &video_flow](const endpoint::DeliveryRecord& rec, const PacketPtr&) {
        if (rec.flow != video_flow || rec.lost) return;
        outcomes[rec.seq] = app::PacketOutcome{true, rec.delivered_at};
      });
  // Background receivers, one per background flow, near DC2.
  std::vector<std::unique_ptr<endpoint::Receiver>> bg_receivers;

  const SimDuration call_len = quick ? sec(20) : sec(120);
  const SimTime outage_start = quick ? sec(8) : sec(45);
  const SimTime outage_end = quick ? sec(13) : sec(75);

  // Links. Direct path: 50 ms one way with the scripted outage.
  auto outage = netsim::make_scheduled_outages(
      netsim::make_bernoulli_loss(0.002, rng.fork("base-loss")),
      {{outage_start, outage_end}});
  netsim::JitterParams direct_jitter;
  direct_jitter.base = msec(50);
  direct_jitter.jitter_scale_ms = 1.0;
  net.add_link(sender.id(), receiver.id(),
               netsim::make_jitter_latency(direct_jitter, rng.fork("dj")),
               std::move(outage));

  auto clean = [&](SimDuration base) {
    netsim::JitterParams jp;
    jp.base = base;
    jp.jitter_scale_ms = 0.3;
    return netsim::make_jitter_latency(jp, rng.fork("clean"));
  };
  net.add_link(sender.id(), dc1.id(), clean(msec(8)), netsim::make_no_loss());
  net.add_link(dc1.id(), dc2.id(), clean(msec(40)), netsim::make_no_loss());
  net.add_link(dc2.id(), receiver.id(), clean(access), netsim::make_no_loss());
  net.add_link(receiver.id(), dc2.id(), clean(access), netsim::make_no_loss());

  endpoint::SessionManager sessions(registry);
  endpoint::RegisterRequest req;
  req.force_service = service;
  req.dc1 = dc1.id();
  req.dc2 = dc2.id();
  req.delays.y_ms = 50.0;
  req.delays.delta_s_ms = 8.0;
  req.delays.delta_r_ms = to_ms(access);
  req.delays.x_ms = 40.0;
  const endpoint::Session session = sessions.register_flow(sender, receiver, req);
  video_flow = session.flow;
  // Forwarded copies route via DC2 (which owns the receiver's access link).
  fwd1->set_next_hop(receiver.id(), dc2.id());

  // Background flows: material for cross-stream coding under CR-WAN, and
  // duplicated over the overlay under forwarding so both treatments carry
  // the same four-flow offered load (a like-for-like bandwidth comparison).
  if (service == ServiceType::kCode || service == ServiceType::kForward) {
    for (int i = 0; i < 3; ++i) {
      endpoint::ReceiverConfig brc;
      brc.dc2 = dc2.id();
      brc.rtt_estimate = msec(100);
      auto br = std::make_unique<endpoint::Receiver>(net, brc);
      net.add_link(bg_sender.id(), br->id(), clean(msec(50)), netsim::make_no_loss());
      net.add_link(bg_sender.id(), dc1.id(), clean(msec(8)), netsim::make_no_loss());
      net.add_link(dc2.id(), br->id(), clean(msec(8)), netsim::make_no_loss());
      net.add_link(br->id(), dc2.id(), clean(msec(8)), netsim::make_no_loss());
      endpoint::RegisterRequest breq = req;
      breq.force_service = service;
      const endpoint::Session bg_session = sessions.register_flow(bg_sender, *br, breq);
      (void)bg_session;
      fwd1->set_next_hop(br->id(), dc2.id());
      bg_receivers.push_back(std::move(br));
    }
  }

  // Video source (the call) + background CBR (~200 Kbps each). The call
  // uses the paper's interactive-video envelope: 10-15 fps, 2-5 packets per
  // frame (Section 5), i.e. ~500 Kbps of ~1.2 KB packets.
  app::VideoParams vp;
  vp.fps = 12.0;
  vp.bitrate_bps = 5e5;
  app::VideoSource video(sim, sender, video_flow, vp, rng.fork("video"));
  video.start(call_len);
  std::vector<std::unique_ptr<transport::CbrApp>> bg_apps;
  for (std::size_t i = 0; i < bg_receivers.size(); ++i) {
    transport::CbrParams cbr;
    cbr.on_duration = call_len;
    cbr.mean_off = sec(1);
    cbr.packets_per_second = 20.0;  // 20 pps * 1250 B = 200 Kbps.
    cbr.payload_bytes = 1250;
    cbr.initial_skew = msec(3 * (static_cast<int>(i) + 1));
    auto appp = std::make_unique<transport::CbrApp>(
        sim, bg_sender, static_cast<FlowId>(video_flow + 1 + i), cbr, rng.fork("bg"));
    appp->start(call_len);
    bg_apps.push_back(std::move(appp));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run_until(call_len + sec(5));
  encoder->flush_all();
  sim.run_until(call_len + sec(10));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  SkypeRun out;
  out.events = sim.events_processed();
  out.wall_sec = wall;
  app::PsnrParams pp;
  pp.playout_deadline = sec(1);  // The call adapts to consistent delay.
  Rng score_rng(seed ^ 0xabcdef);
  out.psnr = app::score_video(video.layout(), vp, outcomes, pp, score_rng);
  const auto* inter_dc = net.link(dc1.id(), dc2.id());
  out.inter_dc_bytes = inter_dc->stats().offered_bytes;
  out.inter_dc_packets = inter_dc->stats().offered_packets;
  const auto& rs = receiver.stats();
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  [%s] direct=%llu recovered=%llu self=%llu nacks=%llu tail=%llu "
                "giveup=%llu enc_evict=%llu rec_coop=%llu rec_dead=%llu uncov=%llu\n",
                to_string(service), (unsigned long long)rs.delivered_direct,
                (unsigned long long)rs.delivered_recovered,
                (unsigned long long)rs.self_decoded, (unsigned long long)rs.nacks_sent,
                (unsigned long long)rs.tail_nacks_sent,
                (unsigned long long)rs.losses_given_up,
                (unsigned long long)encoder->stats().single_packet_evictions,
                (unsigned long long)recovery->stats().coop_success,
                (unsigned long long)recovery->stats().coop_deadline_failures,
                (unsigned long long)recovery->stats().uncovered_keys);
  out.diag += buf;
  std::snprintf(buf, sizeof(buf),
                "      enc data=%llu cross_b=%llu coded=%llu timerfl=%llu | dc2 stored=%llu expired=%llu instream=%llu checks=%llu confirms=%llu\n",
                (unsigned long long)encoder->stats().data_packets,
                (unsigned long long)encoder->stats().cross_batches,
                (unsigned long long)encoder->stats().coded_sent,
                (unsigned long long)encoder->stats().timer_flushes,
                (unsigned long long)recovery->stats().batches_stored,
                (unsigned long long)recovery->stats().batches_expired,
                (unsigned long long)recovery->stats().in_stream_served,
                (unsigned long long)recovery->stats().nack_checks_sent,
                (unsigned long long)recovery->stats().nack_confirms);
  out.diag += buf;
  std::snprintf(buf, sizeof(buf), "      rechecks=%llu nack_keys=%llu\n",
                (unsigned long long)recovery->stats().recheck_probes,
                (unsigned long long)recovery->stats().nack_keys);
  out.diag += buf;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");
  if (!json) std::printf("== Figure 9(a): Skype QoE under a 30 s outage ==\n");

  // The four treatments are independent deterministic sims: run them across
  // the worker pool (JQOS_SIM_THREADS) and report in fixed order after.
  SkypeRun cases[4];
  parallel_for_indexed(4, resolve_sim_threads(0), [&](std::size_t i) {
    switch (i) {
      case 0: cases[0] = run_case(ServiceType::kNone, false, 101, quick); break;
      case 1: cases[1] = run_case(ServiceType::kForward, false, 102, quick); break;
      case 2: cases[2] = run_case(ServiceType::kCode, false, 103, quick); break;
      case 3: cases[3] = run_case(ServiceType::kCode, true, 104, quick); break;
    }
  });
  for (const SkypeRun& r : cases) std::fputs(r.diag.c_str(), stderr);
  const SkypeRun& internet = cases[0];
  const SkypeRun& fwd = cases[1];
  const SkypeRun& crwan = cases[2];
  const SkypeRun& crwan_mobile = cases[3];

  if (json) {
    const auto row = [](const char* treatment, const SkypeRun& r) {
      bench::JsonRow("fig9a_skype")
          .add("name", "treatment")
          .add("treatment", treatment)
          .add("psnr_median_db", r.psnr.median())
          .add("frames_below_30db_pct", r.psnr.cdf_at(30.0) * 100.0)
          .add("inter_dc_packets", r.inter_dc_packets)
          .add("inter_dc_bytes", r.inter_dc_bytes)
          .add("sim_events", r.events)
          .add("events_per_sec", r.wall_sec > 0 ? static_cast<double>(r.events) / r.wall_sec
                                                : 0.0)
          .emit();
    };
    row("internet", internet);
    row("forwarding", fwd);
    row("crwan", crwan);
    row("crwan_mobile", crwan_mobile);
    bench::JsonRow("fig9a_skype")
        .add("name", "bandwidth_ratio_vs_forwarding")
        .add("packets_pct", 100.0 * static_cast<double>(crwan.inter_dc_packets) /
                                static_cast<double>(fwd.inter_dc_packets))
        .add("bytes_pct", 100.0 * static_cast<double>(crwan.inter_dc_bytes) /
                              static_cast<double>(fwd.inter_dc_bytes))
        .emit();
    return 0;
  }

  exp::print_cdf("Fig9a PSNR, Internet (outage)", internet.psnr);
  exp::print_cdf("Fig9a PSNR, Fwd", fwd.psnr);
  exp::print_cdf("Fig9a PSNR, CR-WAN", crwan.psnr);
  exp::print_cdf("Fig9a PSNR, CR-WAN-Mobile", crwan_mobile.psnr);

  exp::print_claim("Fig9a outage degrades Internet QoE",
                   "a 30 s outage freezes ~25% of frames (poor PSNR mass)",
                   "internet frames <30 dB: " +
                       exp::Table::num(internet.psnr.cdf_at(30.0) * 100.0, 0) +
                       "% vs fwd: " + exp::Table::num(fwd.psnr.cdf_at(30.0) * 100.0, 0) +
                       "% vs CR-WAN: " +
                       exp::Table::num(crwan.psnr.cdf_at(30.0) * 100.0, 0) + "%");
  exp::print_claim("Fig9a CR-WAN ~ Fwd QoE",
                   "CR-WAN achieves similar QoE to forwarding",
                   "median " + exp::Table::num(crwan.psnr.median(), 1) + " vs " +
                       exp::Table::num(fwd.psnr.median(), 1) + " dB");
  const double pkt_ratio = 100.0 * static_cast<double>(crwan.inter_dc_packets) /
                           static_cast<double>(fwd.inter_dc_packets);
  const double byte_ratio = 100.0 * static_cast<double>(crwan.inter_dc_bytes) /
                            static_cast<double>(fwd.inter_dc_bytes);
  exp::print_claim("Sec6.3 CR-WAN bandwidth vs forwarding",
                   "13.4% as many packets / 13.6% as many bytes",
                   exp::Table::num(pkt_ratio, 1) + "% packets / " +
                       exp::Table::num(byte_ratio, 1) + "% bytes on the inter-DC path");
  return 0;
}
