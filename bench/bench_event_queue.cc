// Event-queue microbench: single-thread event dispatch throughput of the
// simulator core on the pure-dispatch workloads that bound every figure
// sweep, across three event cores:
//
//   legacy  the event core this PR replaced, reproduced verbatim here:
//           std::function handlers (one heap allocation per non-trivial
//           closure), a binary heap over (time, id), unbounded handler
//           arrays, pop-one-at-a-time dispatch. The baseline the ladder
//           rework's >= 5x acceptance target is measured against.
//   heap    the retained reference backend: same binary-heap ordering, but
//           sharing the new slab (freelist slots, inline EventFn storage)
//           and the batched drain loop. Deliberately stronger than legacy;
//           its gap to legacy shows what slab + inline callbacks buy alone.
//   ladder  the production backend: ladder queue + slab + batched drain.
//
// Workloads:
//   hold   the classic hold model: L live events in steady state; every
//          fired event schedules a successor. The netsim steady-state
//          profile (links keep a bounded in-flight population) and the
//          headline events/sec number.
//   drain  push N events with random timestamps, then drain the queue dry:
//          pure push+pop cost with no rescheduling.
//   churn  hold with cancellation: each fired event schedules two
//          successors and cancels one pending event, exercising the slab
//          freelist and lazy-cancel skipping at speed.
//
// Flags: --json (JSON Lines rows), --quick (CI smoke preset).
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "netsim/simulator.h"

namespace {

using namespace jqos;
using netsim::EventId;
using netsim::EvqBackend;
using netsim::Simulator;

using Clock = std::chrono::steady_clock;

struct Result {
  std::string backend;
  std::string name;
  std::uint64_t live = 0;
  std::uint64_t events = 0;
  double wall_sec = 0.0;
  std::uint64_t slab_slots = 0;

  double events_per_sec() const { return static_cast<double>(events) / wall_sec; }
};

// ------------------------- legacy reference core --------------------------

// The pre-ladder EventQueue + Simulator::run loop, kept byte-faithful (same
// data structures, same pop-one-at-a-time dispatch) so the speedup rows
// measure the rework rather than drift in the comparison.
class LegacyCore {
 public:
  std::uint64_t push(SimTime at, std::function<void()> fn) {
    const std::uint64_t id = next_id_++;
    handlers_.push_back(std::move(fn));
    cancelled_.push_back(false);
    heap_.push(Entry{at, id});
    ++live_;
    return id;
  }
  void cancel(std::uint64_t id) {
    if (id >= cancelled_.size() || cancelled_[id]) return;
    if (!handlers_[id]) return;
    cancelled_[id] = true;
    handlers_[id] = nullptr;
    --live_;
  }
  bool empty() const { return live_ == 0; }
  std::pair<SimTime, std::function<void()>> pop() {
    while (cancelled_[heap_.top().id]) heap_.pop();
    const Entry e = heap_.top();
    heap_.pop();
    std::pair<SimTime, std::function<void()>> out{e.at, std::move(handlers_[e.id])};
    handlers_[e.id] = nullptr;
    --live_;
    return out;
  }
  std::uint64_t slots() const { return handlers_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t id;
    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return id > rhs.id;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::vector<std::function<void()>> handlers_;
  std::vector<bool> cancelled_;
  std::uint64_t next_id_ = 0;
  std::size_t live_ = 0;
};

// A minimal simulator shell over LegacyCore matching the old run() loop.
struct LegacySim {
  LegacyCore q;
  SimTime now = 0;
  std::uint64_t processed = 0;
  void after(SimDuration d, std::function<void()> fn) { q.push(now + d, std::move(fn)); }
  void run() {
    while (!q.empty()) {
      auto [at, fn] = q.pop();
      now = at;
      ++processed;
      fn();
    }
  }
};

// ------------------------------- workloads --------------------------------

Result run_hold_legacy(std::uint64_t live, std::uint64_t total) {
  LegacySim sim;
  Rng rng(42);
  struct Driver {
    LegacySim& sim;
    Rng& rng;
    std::uint64_t remaining;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      sim.after(rng.uniform_int(1, 2000), [this] { fire(); });
    }
  } driver{sim, rng, total};
  for (std::uint64_t i = 0; i < live; ++i) {
    sim.q.push(rng.uniform_int(0, 1000000), [&driver] { driver.fire(); });
  }
  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {"legacy", "hold", live, sim.processed, secs, sim.q.slots()};
}

Result run_drain_legacy(std::uint64_t n) {
  LegacySim sim;
  Rng rng(43);
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.q.push(100 * rng.uniform_int(0, static_cast<std::int64_t>(n) / 10), [] {});
  }
  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {"legacy", "drain", n, sim.processed, secs, sim.q.slots()};
}

Result run_churn_legacy(std::uint64_t live, std::uint64_t total) {
  LegacySim sim;
  Rng rng(44);
  struct Driver {
    LegacySim& sim;
    Rng& rng;
    std::uint64_t remaining;
    std::vector<std::uint64_t> pending;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      pending.push_back(sim.q.push(sim.now + rng.uniform_int(1, 2000), [this] { fire(); }));
      pending.push_back(sim.q.push(sim.now + rng.uniform_int(1, 2000), [this] { fire(); }));
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      sim.q.cancel(pending[pick]);
      pending[pick] = pending.back();
      pending.pop_back();
    }
  } driver{sim, rng, total, {}};
  for (std::uint64_t i = 0; i < live; ++i) {
    sim.q.push(rng.uniform_int(0, 1000000), [&driver] { driver.fire(); });
  }
  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {"legacy", "churn", live, sim.processed, secs, sim.q.slots()};
}

// Steady-state hold model: fire `total` events through `live` in-flight.
Result run_hold(EvqBackend backend, std::uint64_t live, std::uint64_t total) {
  Simulator sim(backend);
  Rng rng(42);

  struct Driver {
    Simulator& sim;
    Rng& rng;
    std::uint64_t remaining;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      // Uniform delays: the cheapest draw, so dispatch (not RNG) dominates.
      sim.after(rng.uniform_int(1, 2000), [this] { fire(); });
    }
  } driver{sim, rng, total};

  for (std::uint64_t i = 0; i < live; ++i) {
    sim.at(rng.uniform_int(0, 1000000), [&driver] { driver.fire(); });
  }

  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {netsim::evq_backend_name(backend), "hold", live, sim.events_processed(), secs,
          sim.queue().slab_slots()};
}

// Push N events up front, then drain the queue dry.
Result run_drain(EvqBackend backend, std::uint64_t n) {
  Simulator sim(backend);
  Rng rng(43);
  for (std::uint64_t i = 0; i < n; ++i) {
    // Coarse 100us grid: heavy equal-timestamp ties, as links produce.
    sim.at(100 * rng.uniform_int(0, static_cast<std::int64_t>(n) / 10), [] {});
  }
  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {netsim::evq_backend_name(backend), "drain", n, sim.events_processed(), secs,
          sim.queue().slab_slots()};
}

// Hold with cancellation churn: fired events spawn two successors and
// cancel a pending one, keeping the live population stable.
Result run_churn(EvqBackend backend, std::uint64_t live, std::uint64_t total) {
  Simulator sim(backend);
  Rng rng(44);

  struct Driver {
    Simulator& sim;
    Rng& rng;
    std::uint64_t remaining;
    std::vector<EventId> pending;
    void fire() {
      if (remaining == 0) return;
      --remaining;
      pending.push_back(sim.after(rng.uniform_int(1, 2000), [this] { fire(); }));
      pending.push_back(sim.after(rng.uniform_int(1, 2000), [this] { fire(); }));
      // Cancel one pending event so the population does not explode.
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      sim.cancel(pending[pick]);
      pending[pick] = pending.back();
      pending.pop_back();
    }
  } driver{sim, rng, total, {}};

  for (std::uint64_t i = 0; i < live; ++i) {
    sim.at(rng.uniform_int(0, 1000000), [&driver] { driver.fire(); });
  }
  const auto start = Clock::now();
  sim.run();
  const double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return {netsim::evq_backend_name(backend), "churn", live, sim.events_processed(), secs,
          sim.queue().slab_slots()};
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = jqos::bench::want_json(argc, argv);
  const bool quick = jqos::bench::want_flag(argc, argv, "--quick");

  const std::uint64_t live = quick ? 50'000 : 1'000'000;
  const std::uint64_t total = quick ? 200'000 : 4'000'000;
  const std::uint64_t drain_n = quick ? 200'000 : 4'000'000;

  constexpr EvqBackend kBackends[] = {EvqBackend::kHeap, EvqBackend::kLadder};
  // Each configuration runs `reps` times and keeps the best wall time, so a
  // noisy co-tenant inflates neither numerator nor denominator of a ratio.
  const int reps = quick ? 1 : 3;
  std::vector<Result> results;
  const auto best = [&](auto&& runner) {
    Result b = runner();
    for (int i = 1; i < reps; ++i) {
      Result r = runner();
      if (r.wall_sec < b.wall_sec) b = r;
    }
    results.push_back(b);
  };
  best([&] { return run_hold_legacy(live, total); });
  for (EvqBackend b : kBackends) best([&, b] { return run_hold(b, live, total); });
  best([&] { return run_drain_legacy(drain_n); });
  for (EvqBackend b : kBackends) best([&, b] { return run_drain(b, drain_n); });
  best([&] { return run_churn_legacy(live / 4, total / 2); });
  for (EvqBackend b : kBackends) best([&, b] { return run_churn(b, live / 4, total / 2); });

  const auto baseline = [&](const std::string& name, const std::string& backend) {
    for (const Result& r : results) {
      if (r.name == name && r.backend == backend) return r.events_per_sec();
    }
    return 0.0;
  };

  if (json) {
    for (const Result& r : results) {
      const double legacy = baseline(r.name, "legacy");
      const double heap = baseline(r.name, "heap");
      jqos::bench::JsonRow("event_queue")
          .add("name", r.name)
          .add("backend", r.backend)
          .add("live", r.live)
          .add("events", r.events)
          .add("events_per_sec", r.events_per_sec())
          .add("wall_sec", r.wall_sec)
          .add("slab_slots", r.slab_slots)
          .add("speedup_vs_legacy", legacy > 0 ? r.events_per_sec() / legacy : 0.0)
          .add("speedup_vs_heap", heap > 0 ? r.events_per_sec() / heap : 0.0)
          .emit();
    }
    return 0;
  }

  std::printf("== Event-queue dispatch: %llu live, %llu events (single thread) ==\n",
              static_cast<unsigned long long>(live), static_cast<unsigned long long>(total));
  std::printf("%-7s %-8s %12s %12s %14s %10s %11s %10s\n", "work", "backend", "live",
              "events", "events/sec", "wall s", "vs legacy", "vs heap");
  for (const Result& r : results) {
    const double legacy = baseline(r.name, "legacy");
    const double heap = baseline(r.name, "heap");
    std::printf("%-7s %-8s %12llu %12llu %14.0f %10.3f %10.2fx %9.2fx\n", r.name.c_str(),
                r.backend.c_str(), static_cast<unsigned long long>(r.live),
                static_cast<unsigned long long>(r.events), r.events_per_sec(), r.wall_sec,
                legacy > 0 ? r.events_per_sec() / legacy : 0.0,
                heap > 0 ? r.events_per_sec() / heap : 0.0);
  }
  std::printf("\n'legacy' is the replaced core (std::function handlers, unbatched binary\n"
              "heap). 'heap' is this PR's retained reference backend, which already\n"
              "shares the slab + inline-callback + batched-drain infrastructure.\n");
  return 0;
}
