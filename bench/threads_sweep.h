// Shared scaffolding for the ShardedRunner threads sweeps in
// bench_fig8_crwan and bench_fig10_scalability: one row schema (keyed on by
// scripts/bench_regression.py), one thread-count ladder, one table printer,
// one JSON emitter — so the sweep shape cannot silently diverge between
// benches.
//
// Semantics reminder for readers of the rows: merged results are
// bit-identical across every row of one sweep (the runner's determinism
// contract), so `events` must match row to row; only wall-clock moves.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.h"

namespace jqos::bench {

// One measured (threads -> wall clock) point of a sharded scenario run.
struct ThreadsSweepRow {
  unsigned threads = 0;
  std::size_t shards = 0;
  double wall_sec = 0.0;
  std::uint64_t events = 0;   // Merged simulator events.
  std::uint64_t packets = 0;  // Merged end-to-end workload packets.
};

// The ladder every sweep measures: 1/2/4 plus the machine's full width.
inline std::vector<unsigned> sweep_thread_counts() {
  std::vector<unsigned> counts{1, 2, 4};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw > 4) counts.push_back(hw);
  return counts;
}

inline double sweep_speedup(const std::vector<ThreadsSweepRow>& rows,
                            const ThreadsSweepRow& row) {
  return rows.empty() || row.wall_sec <= 0.0 ? 0.0 : rows.front().wall_sec / row.wall_sec;
}

// Human-oriented table; `header` names the scenario shape.
inline void print_threads_sweep(const char* header,
                                const std::vector<ThreadsSweepRow>& rows) {
  std::printf("%s\n", header);
  std::printf("%-8s %-8s %10s %12s %12s %10s %12s\n", "threads", "shards", "wall_s",
              "events", "Mev/s", "Mpps", "speedup");
  for (const ThreadsSweepRow& row : rows) {
    std::printf("%-8u %-8zu %10.2f %12llu %12.2f %10.3f %11.2fx\n", row.threads,
                row.shards, row.wall_sec, static_cast<unsigned long long>(row.events),
                static_cast<double>(row.events) / row.wall_sec / 1e6,
                static_cast<double>(row.packets) / row.wall_sec / 1e6,
                sweep_speedup(rows, row));
  }
}

// JSON Lines rows: bench=<bench_name>, name=<row_name>, one row per point.
inline void emit_threads_sweep(const char* bench_name, const char* row_name,
                               const std::vector<ThreadsSweepRow>& rows) {
  for (const ThreadsSweepRow& row : rows) {
    JsonRow(bench_name)
        .add("name", row_name)
        .add("threads", static_cast<std::uint64_t>(row.threads))
        .add("shards", static_cast<std::uint64_t>(row.shards))
        .add("wall_sec", row.wall_sec)
        .add("events", row.events)
        .add("mev_per_sec", static_cast<double>(row.events) / row.wall_sec / 1e6)
        .add("mpps", static_cast<double>(row.packets) / row.wall_sec / 1e6)
        .add("speedup_vs_1t", sweep_speedup(rows, row))
        .emit();
  }
}

}  // namespace jqos::bench
