// Section 6.6 "Coding Overhead" experiment: encoding across larger numbers
// of concurrent streams reduces overhead while keeping recovery high. The
// paper's controlled Emulab run: 20 concurrent streams, 2 cross-stream
// coded packets (r = 2/20 = 10% overhead), Google-study loss rates =>
// > 92% of lost packets recovered.
//
// We sweep k (streams per batch) at 2 coded packets per batch and report
// overhead vs recovery, using the full simulated service stack.
// With --json the sweep rows are emitted as JSON Lines (see bench_json.h)
// instead of the human table, so CI can diff overhead/recovery across PRs.
#include <cstdio>

#include "bench_json.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace {

using namespace jqos;

struct SweepPoint {
  std::size_t k;
  double overhead;
  double recovery;
  services::RecoveryStatsDc rec;
  services::EncoderStats enc;
};

SweepPoint run_point(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  // One metro: all senders share DC1 and all receivers share DC2, so every
  // batch can reach the full k streams.
  geo::PathDatasetParams pd;
  pd.sender_region = geo::WorldRegion::kUsEast;
  pd.receiver_region = geo::WorldRegion::kEurope;
  pd.num_paths = 20;  // 20 concurrent streams, as in the paper.
  auto paths = geo::synthesize_paths(pd, rng);
  // Force a single DC pair (spatial grouping) so k-stream batches form.
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = seed;
  params.coding.k = k;
  params.coding.cross_coded = 2;
  params.coding.in_coded = 0;  // Cross-stream only: isolate the r = 2/k knob.
  params.coding.queue_timeout = msec(150);
  params.coding.queues_per_group = 1;  // One queue: fill at the full group rate.
  // Google-study style losses (as in the paper's controlled experiment).
  params.direct.bernoulli_loss = 0.0;
  params.direct.enable_bursts = true;
  params.direct.gilbert.p_good_to_bad = 0.01;
  params.direct.gilbert.p_bad_to_good = 0.5;
  params.direct.gilbert.loss_in_bad = 0.5;
  params.direct.outage_path_fraction = 0.0;
  params.direct.path_severity_sigma = 0.0;  // Uniform loss across streams (Emulab).
  params.coop_slow_prob = 0.0;  // Controlled Emulab run: no stragglers.
  params.cbr.on_duration = minutes(2);
  params.cbr.mean_off = sec(10);
  params.cbr.packets_per_second = 25.0;

  exp::WanScenario scenario(std::move(paths), params);
  scenario.run(minutes(4));

  SweepPoint point;
  point.k = k;
  const auto enc = scenario.encoder_totals();
  point.overhead = enc.data_packets == 0
                       ? 0.0
                       : static_cast<double>(enc.coded_sent) /
                             static_cast<double>(enc.data_packets);
  std::uint64_t recovered = 0, lost = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    recovered += scenario.path(i).recovered;
    lost += scenario.path(i).lost;
  }
  point.recovery = (recovered + lost) == 0
                       ? 1.0
                       : static_cast<double>(recovered) /
                             static_cast<double>(recovered + lost);
  point.rec = scenario.recovery_totals();
  point.enc = scenario.encoder_totals();
  std::uint64_t coop_miss = 0, coop_sent = 0, still_missing = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    coop_miss += scenario.path(i).receiver->stats().coop_misses;
    coop_sent += scenario.path(i).receiver->stats().coop_responses_sent;
  }
  (void)still_missing;
  double lr = 0; for (std::size_t i = 0; i < scenario.path_count(); ++i) lr += scenario.path(i).loss_rate();
  lr /= scenario.path_count();
  std::fprintf(stderr, "  k=%zu coop_miss=%llu coop_sent=%llu mean_loss=%.3f%%\n", k,
               (unsigned long long)coop_miss, (unsigned long long)coop_sent, lr*100);
  std::fprintf(stderr,
               "  k=%zu ops=%llu succ=%llu dead=%llu uncov=%llu evict=%llu "
               "coopmissresp=%llu reqs=%llu resps=%llu\n",
               k, (unsigned long long)point.rec.coop_ops,
               (unsigned long long)point.rec.coop_success,
               (unsigned long long)point.rec.coop_deadline_failures,
               (unsigned long long)point.rec.uncovered_keys,
               (unsigned long long)point.enc.single_packet_evictions,
               (unsigned long long)point.rec.straggler_responses,
               (unsigned long long)point.rec.coop_requests_sent,
               (unsigned long long)point.rec.coop_responses);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  if (!json) std::printf("== Section 6.6: coding overhead vs concurrent streams ==\n");

  exp::Table t({"k (streams/batch)", "coded rate r", "measured overhead", "recovery %"});
  for (std::size_t k : {4u, 6u, 10u, 20u}) {
    const SweepPoint p = run_point(k, 7000 + k);
    if (json) {
      bench::JsonRow("coding_overhead")
          .add("name", "overhead_sweep")
          .add("k", p.k)
          .add("coded_per_batch", std::uint64_t{2})
          .add("overhead", p.overhead)
          .add("recovery", p.recovery)
          .add("coop_ops", p.rec.coop_ops)
          .add("coop_success", p.rec.coop_success)
          .emit();
      continue;
    }
    t.add_row({std::to_string(p.k), "2/" + std::to_string(p.k),
               exp::Table::num(p.overhead * 100.0, 1) + "%",
               exp::Table::num(p.recovery * 100.0, 1) + "%"});
    if (k == 20) {
      exp::print_claim("Sec6.6 20-stream overhead",
                       "r = 2/20: >92% recovery at 10% overhead",
                       exp::Table::num(p.recovery * 100.0, 1) + "% recovery at " +
                           exp::Table::num(p.overhead * 100.0, 1) + "% overhead");
    }
  }
  if (!json) t.print("coding overhead sweep (2 cross-stream coded packets per batch)");
  return 0;
}
