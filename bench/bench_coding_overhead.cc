// Section 6.6 "Coding Overhead" experiment: encoding across larger numbers
// of concurrent streams reduces overhead while keeping recovery high. The
// paper's controlled Emulab run: 20 concurrent streams, 2 cross-stream
// coded packets (r = 2/20 = 10% overhead), Google-study loss rates =>
// > 92% of lost packets recovered.
//
// We sweep k (streams per batch) at 2 coded packets per batch and report
// overhead vs recovery, using the full simulated service stack.
// With --json the sweep rows are emitted as JSON Lines (see bench_json.h)
// instead of the human table, so CI can diff overhead/recovery across PRs.
//
// A second section microbenchmarks the per-batch encode path itself —
// legacy allocation-per-shard encode_batch vs the zero-copy
// BatchEncoder::encode_into, with the raw strided ReedSolomon kernel as the
// ceiling — and emits one `encode_path` row per path (MB/s of data bytes
// coded, speedup vs legacy, fraction of the raw kernel rate). --quick
// shortens the measurement windows for CI's bench-smoke job.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "fec/coded_batch.h"
#include "fec/gf256_simd.h"

namespace {

using namespace jqos;

// --------------------- encode-path microbenchmark -------------------------

struct EncodePathPoint {
  const char* path;  // "legacy" | "zero_copy" | "kernel_only"
  std::size_t k;
  std::size_t r;
  double mbps = 0.0;          // Data bytes coded per second.
  double batches_per_sec = 0.0;
};

constexpr std::size_t kMicroPayload = 512;  // The paper's accounting size.

std::vector<PacketPtr> make_micro_batch(std::size_t k) {
  Rng rng(42);
  std::vector<PacketPtr> pkts;
  for (std::size_t i = 0; i < k; ++i) {
    auto p = std::make_shared<Packet>();
    p->flow = static_cast<FlowId>(i + 1);
    p->seq = static_cast<SeqNo>(i);
    p->payload.resize(kMicroPayload);
    for (auto& b : p->payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    pkts.push_back(std::move(p));
  }
  return pkts;
}

// Runs `body` (one full batch encode per call) for three timed windows and
// keeps the best, converting batch count into MB/s of data bytes.
// Best-of-3 (as in bench_event_queue) filters scheduler and frequency noise
// that a single window is exposed to.
template <typename Body>
EncodePathPoint measure_path(const char* path, std::size_t k, std::size_t r, int window_ms,
                             Body body) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < 64; ++i) body();  // Warm-up: tables, arena high-water.
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto start = Clock::now();
    const auto deadline = start + std::chrono::milliseconds(window_ms);
    std::uint64_t batches = 0;
    while (Clock::now() < deadline) {
      for (int i = 0; i < 32; ++i) body();
      batches += 32;
    }
    const double secs = std::chrono::duration<double>(Clock::now() - start).count();
    best = std::max(best, static_cast<double>(batches) / secs);
  }
  EncodePathPoint point;
  point.path = path;
  point.k = k;
  point.r = r;
  point.batches_per_sec = best;
  point.mbps = best * static_cast<double>(k) * kMicroPayload / 1e6;
  return point;
}

std::vector<EncodePathPoint> run_encode_paths(std::size_t k, std::size_t r,
                                              int window_ms) {
  const auto pkts = make_micro_batch(k);
  std::vector<EncodePathPoint> points;
  std::uint32_t batch_id = 0;

  points.push_back(measure_path("legacy", k, r, window_ms, [&] {
    auto coded =
        fec::encode_batch(pkts, r, PacketType::kCrossCoded, batch_id++, 1, 2, 0);
    if (coded.size() != r) std::abort();  // Keeps the call observable.
  }));

  fec::BatchEncoder enc;
  std::vector<PacketPtr> out;
  points.push_back(measure_path("zero_copy", k, r, window_ms, [&] {
    out.clear();
    enc.encode_into(pkts, r, PacketType::kCrossCoded, batch_id++, 1, 2, 0, out);
    if (out.size() != r) std::abort();
  }));

  // Raw kernel ceiling: the same shards pre-framed in an arena, parity into
  // fixed buffers — framing, packet, and metadata costs all stripped away.
  const std::size_t shard_len = fec::shard_length(kMicroPayload);
  fec::ShardArena arena;
  arena.layout(k, shard_len);
  for (std::size_t i = 0; i < k; ++i) arena.frame_shard_into(i, pkts[i]->payload);
  const fec::ReedSolomon rs(k, r);
  std::vector<std::vector<std::uint8_t>> parity(r, std::vector<std::uint8_t>(shard_len));
  std::vector<std::uint8_t*> parity_ptrs;
  for (auto& p : parity) parity_ptrs.push_back(p.data());
  points.push_back(measure_path("kernel_only", k, r, window_ms, [&] {
    rs.encode_into(arena.data(), arena.stride(), shard_len, parity_ptrs.data());
    if (parity[0][0] == 0 && parity[0][1] == 0) {
      // Extremely unlikely for random data; the branch keeps the encode from
      // being optimized away without a benchmark library dependency.
      std::fputs("", stderr);
    }
  }));
  return points;
}

struct SweepPoint {
  std::size_t k;
  double overhead;
  double recovery;
  services::RecoveryStatsDc rec;
  services::EncoderStats enc;
};

SweepPoint run_point(std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  // One metro: all senders share DC1 and all receivers share DC2, so every
  // batch can reach the full k streams.
  geo::PathDatasetParams pd;
  pd.sender_region = geo::WorldRegion::kUsEast;
  pd.receiver_region = geo::WorldRegion::kEurope;
  pd.num_paths = 20;  // 20 concurrent streams, as in the paper.
  auto paths = geo::synthesize_paths(pd, rng);
  // Force a single DC pair (spatial grouping) so k-stream batches form.
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }

  exp::WanScenarioParams params;
  params.service = ServiceType::kCode;
  params.seed = seed;
  params.coding.k = k;
  params.coding.cross_coded = 2;
  params.coding.in_coded = 0;  // Cross-stream only: isolate the r = 2/k knob.
  params.coding.queue_timeout = msec(150);
  params.coding.queues_per_group = 1;  // One queue: fill at the full group rate.
  // Google-study style losses (as in the paper's controlled experiment).
  params.direct.bernoulli_loss = 0.0;
  params.direct.enable_bursts = true;
  params.direct.gilbert.p_good_to_bad = 0.01;
  params.direct.gilbert.p_bad_to_good = 0.5;
  params.direct.gilbert.loss_in_bad = 0.5;
  params.direct.outage_path_fraction = 0.0;
  params.direct.path_severity_sigma = 0.0;  // Uniform loss across streams (Emulab).
  params.coop_slow_prob = 0.0;  // Controlled Emulab run: no stragglers.
  params.cbr.on_duration = minutes(2);
  params.cbr.mean_off = sec(10);
  params.cbr.packets_per_second = 25.0;

  exp::WanScenario scenario(std::move(paths), params);
  scenario.run(minutes(4));

  SweepPoint point;
  point.k = k;
  const auto enc = scenario.encoder_totals();
  point.overhead = enc.data_packets == 0
                       ? 0.0
                       : static_cast<double>(enc.coded_sent) /
                             static_cast<double>(enc.data_packets);
  std::uint64_t recovered = 0, lost = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    recovered += scenario.path(i).recovered;
    lost += scenario.path(i).lost;
  }
  point.recovery = (recovered + lost) == 0
                       ? 1.0
                       : static_cast<double>(recovered) /
                             static_cast<double>(recovered + lost);
  point.rec = scenario.recovery_totals();
  point.enc = scenario.encoder_totals();
  std::uint64_t coop_miss = 0, coop_sent = 0, still_missing = 0;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    coop_miss += scenario.path(i).receiver->stats().coop_misses;
    coop_sent += scenario.path(i).receiver->stats().coop_responses_sent;
  }
  (void)still_missing;
  double lr = 0; for (std::size_t i = 0; i < scenario.path_count(); ++i) lr += scenario.path(i).loss_rate();
  lr /= scenario.path_count();
  std::fprintf(stderr, "  k=%zu coop_miss=%llu coop_sent=%llu mean_loss=%.3f%%\n", k,
               (unsigned long long)coop_miss, (unsigned long long)coop_sent, lr*100);
  std::fprintf(stderr,
               "  k=%zu ops=%llu succ=%llu dead=%llu uncov=%llu evict=%llu "
               "coopmissresp=%llu reqs=%llu resps=%llu\n",
               k, (unsigned long long)point.rec.coop_ops,
               (unsigned long long)point.rec.coop_success,
               (unsigned long long)point.rec.coop_deadline_failures,
               (unsigned long long)point.rec.uncovered_keys,
               (unsigned long long)point.enc.single_packet_evictions,
               (unsigned long long)point.rec.straggler_responses,
               (unsigned long long)point.rec.coop_requests_sent,
               (unsigned long long)point.rec.coop_responses);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");

  // Encode-path microbench: legacy vs zero-copy vs raw kernel. Shapes:
  // k=5/r=1 (the fig10 s = 1/5 rate — the canonical k=5 point), k=5/r=2,
  // and the paper's 20-stream sweep shape k=20/r=2.
  const int window_ms = quick ? 60 : 300;
  if (!json) {
    std::printf("== Batch encode path: legacy vs zero-copy (%zu B payloads, %s) ==\n",
                kMicroPayload, fec::gf_backend_name());
    std::printf("%-12s %4s %3s %12s %14s %12s %12s\n", "path", "k", "r", "MB/s",
                "batches/s", "vs legacy", "of kernel");
  }
  const std::pair<std::size_t, std::size_t> micro_shapes[] = {{5, 1}, {5, 2}, {20, 2}};
  for (const auto& [k, r] : micro_shapes) {
    const auto points = run_encode_paths(k, r, window_ms);
    double legacy_mbps = 0.0, kernel_mbps = 0.0;
    for (const auto& p : points) {
      if (std::string_view(p.path) == "legacy") legacy_mbps = p.mbps;
      if (std::string_view(p.path) == "kernel_only") kernel_mbps = p.mbps;
    }
    for (const auto& p : points) {
      if (json) {
        bench::JsonRow("coding_overhead")
            .add("name", "encode_path")
            .add("path", p.path)
            .add("k", p.k)
            .add("payload_bytes", kMicroPayload)
            .add("coded_per_batch", p.r)
            .add("gf_backend", fec::gf_backend_name())
            .add("mbps", p.mbps)
            .add("batches_per_sec", p.batches_per_sec)
            .add("speedup_vs_legacy", legacy_mbps > 0 ? p.mbps / legacy_mbps : 0.0)
            .add("fraction_of_kernel", kernel_mbps > 0 ? p.mbps / kernel_mbps : 0.0)
            .emit();
      } else {
        std::printf("%-12s %4zu %3zu %12.1f %14.0f %11.2fx %11.1f%%\n", p.path, p.k, p.r,
                    p.mbps, p.batches_per_sec, legacy_mbps > 0 ? p.mbps / legacy_mbps : 0.0,
                    kernel_mbps > 0 ? 100.0 * p.mbps / kernel_mbps : 0.0);
      }
    }
  }
  if (!json) std::printf("\n== Section 6.6: coding overhead vs concurrent streams ==\n");

  exp::Table t({"k (streams/batch)", "coded rate r", "measured overhead", "recovery %"});
  const std::vector<std::size_t> sweep_ks =
      quick ? std::vector<std::size_t>{4, 20} : std::vector<std::size_t>{4, 6, 10, 20};
  for (std::size_t k : sweep_ks) {
    const SweepPoint p = run_point(k, 7000 + k);
    if (json) {
      bench::JsonRow("coding_overhead")
          .add("name", "overhead_sweep")
          .add("k", p.k)
          .add("coded_per_batch", std::uint64_t{2})
          .add("overhead", p.overhead)
          .add("recovery", p.recovery)
          .add("coop_ops", p.rec.coop_ops)
          .add("coop_success", p.rec.coop_success)
          .emit();
      continue;
    }
    t.add_row({std::to_string(p.k), "2/" + std::to_string(p.k),
               exp::Table::num(p.overhead * 100.0, 1) + "%",
               exp::Table::num(p.recovery * 100.0, 1) + "%"});
    if (k == 20) {
      exp::print_claim("Sec6.6 20-stream overhead",
                       "r = 2/20: >92% recovery at 10% overhead",
                       exp::Table::num(p.recovery * 100.0, 1) + "% recovery at " +
                           exp::Table::num(p.overhead * 100.0, 1) + "% overhead");
    }
  }
  if (!json) t.print("coding overhead sweep (2 cross-stream coded packets per batch)");
  return 0;
}
