// Machine-readable bench output (ROADMAP "bench JSON emission" item).
//
// Benches print human-oriented tables by default; passing --json switches
// them to JSON Lines — one self-contained object per measurement row on
// stdout — so CI can diff throughput/figure rows across PRs and flag perf or
// fidelity regressions automatically. One shared emitter keeps the schema
// uniform across benches: every row carries a "bench" tag naming its
// emitter, then bench-specific fields in call order.
//
// Usage:
//   const bool json = jqos::bench::want_json(argc, argv);
//   ...
//   if (json) {
//     jqos::bench::JsonRow("fig10").add("backend", "avx2").add("mbps", 1234.5).emit();
//   }
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace jqos::bench {

// True when `flag` appears among the command-line arguments.
inline bool want_flag(int argc, char** argv, std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == flag) return true;
  }
  return false;
}

// True when "--json" appears among the command-line arguments.
inline bool want_json(int argc, char** argv) { return want_flag(argc, argv, "--json"); }

// Builder for one JSON Lines row. Fields appear in insertion order; emit()
// prints the closed object plus a newline and may be called once.
class JsonRow {
 public:
  explicit JsonRow(std::string_view bench) : buf_("{") { add("bench", bench); }

  JsonRow& add(std::string_view key, std::string_view value) {
    field_key(key);
    buf_ += '"';
    append_escaped(value);
    buf_ += '"';
    return *this;
  }

  JsonRow& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }

  JsonRow& add(std::string_view key, double value) {
    field_key(key);
    if (!std::isfinite(value)) {
      // JSON has no NaN/Infinity literal; empty-set percentiles are NaN by
      // contract (see Samples::percentile), so emit null rather than a row
      // the CI validator rejects.
      buf_ += "null";
      return *this;
    }
    char num[64];
    // %.6g keeps rates readable while staying stable enough to diff.
    std::snprintf(num, sizeof(num), "%.6g", value);
    buf_ += num;
    return *this;
  }

  JsonRow& add(std::string_view key, std::int64_t value) {
    field_key(key);
    char num[32];
    std::snprintf(num, sizeof(num), "%" PRId64, value);
    buf_ += num;
    return *this;
  }

  JsonRow& add(std::string_view key, std::uint64_t value) {
    field_key(key);
    char num[32];
    std::snprintf(num, sizeof(num), "%" PRIu64, value);
    buf_ += num;
    return *this;
  }

  void emit(std::FILE* out = stdout) {
    buf_ += "}\n";
    std::fputs(buf_.c_str(), out);
    std::fflush(out);
  }

 private:
  void field_key(std::string_view key) {
    if (buf_.size() > 1) buf_ += ',';
    buf_ += '"';
    append_escaped(key);
    buf_ += "\":";
  }

  void append_escaped(std::string_view s) {
    for (char ch : s) {
      switch (ch) {
        case '"':
          buf_ += "\\\"";
          break;
        case '\\':
          buf_ += "\\\\";
          break;
        case '\n':
          buf_ += "\\n";
          break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof(esc), "\\u%04x", ch);
            buf_ += esc;
          } else {
            buf_ += ch;
          }
      }
    }
  }

  std::string buf_;
};

}  // namespace jqos::bench
