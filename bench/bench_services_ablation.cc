// The paper's central trade-off (Figures 1 and 2), measured end to end:
// run the same wide-area workload under each J-QoS service and report what
// each one buys (recovery rate, recovery latency) and costs (inter-DC
// egress per delivered application byte -- the quantity the cloud bills).
//
// Expected shape: forwarding ~ highest cost / no recovery needed at all
// (packets ride the overlay); caching ~ cost c with fast pulls; coding ~
// a fraction of c with slightly slower cooperative recovery; Internet-only
// ~ free but lossy. "Judicious QoS" is the region between them.
//
// Flags: --json emits one JSON Lines row per service; --quick shrinks the
// simulated duration to a CI smoke preset.
#include <cstdio>

#include "bench_json.h"
#include "common/parallel.h"
#include "exp/report.h"
#include "exp/sharded_runner.h"

namespace {

using namespace jqos;

struct Row {
  const char* name;
  double recovery = 0.0;       // Fraction of direct losses repaired in time.
  double delivery = 0.0;       // Fraction of app packets delivered (any path).
  double recovery_p90_ms = 0.0;
  double egress_per_kb = 0.0;  // Total DC egress bytes per delivered KB
                               // (the quantity the cloud bills).
};

Row run_service(const char* name, ServiceType service, std::uint64_t seed, bool quick) {
  Rng prng(seed);
  auto paths = geo::planetlab_paths(20, prng);
  // One DC pair so the coding groups reach full k (the paper's DCs each
  // aggregate many users; small groups degrade coding toward duplication).
  for (auto& p : paths) {
    p.dc1 = paths[0].dc1;
    p.dc2 = paths[0].dc2;
  }

  exp::WanScenarioParams params;
  params.service = service;
  params.seed = seed;
  params.coding.k = 10;
  params.coding.queue_timeout = msec(300);
  params.cbr.on_duration = quick ? sec(20) : minutes(1);
  params.cbr.mean_off = quick ? sec(15) : sec(45);
  params.cbr.packets_per_second = 25.0;
  params.cbr.payload_bytes = 512;
  // The multi-core scenario path: identical merged results to the
  // monolithic WanScenario for any shard/thread count (see
  // exp/sharded_runner.h). With one DC pair the paths form a single
  // interaction group, so the runner packs them into one shard; the
  // cross-service parallelism lives in main().
  exp::ShardedRunParams run_params;
  run_params.num_threads = 1;  // main() already fans services across cores.
  exp::ShardedRunner scenario(std::move(paths), params, run_params);
  scenario.run(quick ? minutes(2) : minutes(10));

  Row row;
  row.name = name;
  std::uint64_t delivered = 0, recovered = 0, lost = 0;
  Samples recovery_ms;
  for (std::size_t i = 0; i < scenario.path_count(); ++i) {
    const exp::PathRuntime& rt = scenario.path(i);
    delivered += rt.delivered_direct;
    recovered += rt.recovered;
    lost += rt.lost;
    for (double v : rt.recovery_ms.values()) recovery_ms.add(v);
  }
  const std::uint64_t losses = recovered + lost;
  row.recovery = losses == 0 ? 1.0
                             : static_cast<double>(recovered) / static_cast<double>(losses);
  row.delivery = static_cast<double>(delivered + recovered) /
                 static_cast<double>(delivered + losses);
  row.recovery_p90_ms = recovery_ms.percentile(90);

  // Total DC egress (what the cloud bills): forwarding pays twice (DC1 ->
  // DC2, DC2 -> receiver), caching pays once plus pulls, coding pays the
  // coded fraction plus recovery traffic.
  std::uint64_t egress = 0;
  for (std::size_t si = 0; si < scenario.shard_count(); ++si) {
    auto& overlay = scenario.shard(si).overlay();
    for (std::size_t i = 0; i < overlay.dc_count(); ++i) {
      egress += overlay.dc(i).egress_bytes();
    }
  }
  const double delivered_kb =
      static_cast<double>(delivered + recovered) * 512.0 / 1000.0;
  row.egress_per_kb = delivered_kb == 0.0 ? 0.0 : static_cast<double>(egress) / delivered_kb;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");
  if (!json) {
    std::printf("== Service ablation: the Figure 1/2 cost-vs-QoS spectrum, measured ==\n");
  }

  // Four independent deterministic sims: one per worker thread.
  Row rows[4];
  parallel_for_indexed(4, resolve_sim_threads(0), [&](std::size_t i) {
    switch (i) {
      case 0: rows[0] = run_service("internet-only", ServiceType::kNone, 77, quick); break;
      case 1: rows[1] = run_service("coding (CR-WAN)", ServiceType::kCode, 77, quick); break;
      case 2: rows[2] = run_service("caching", ServiceType::kCache, 77, quick); break;
      case 3: rows[3] = run_service("forwarding", ServiceType::kForward, 77, quick); break;
    }
  });
  const Row& internet = rows[0];
  const Row& coding = rows[1];
  const Row& caching = rows[2];
  const Row& forwarding = rows[3];

  if (json) {
    const auto emit = [](const char* service, const Row& r) {
      bench::JsonRow("services_ablation")
          .add("name", "service")
          .add("service", service)
          .add("delivery", r.delivery)
          .add("recovery", r.recovery)
          .add("recovery_p90_ms", r.recovery_p90_ms)
          .add("egress_bytes_per_delivered_kb", r.egress_per_kb)
          .emit();
    };
    emit("internet", internet);
    emit("coding", coding);
    emit("caching", caching);
    emit("forwarding", forwarding);
    return 0;
  }

  exp::Table t({"service", "delivery %", "loss recovery %", "recovery p90 (ms)",
                "DC egress bytes / delivered KB"});
  for (const Row& r : {internet, coding, caching, forwarding}) {
    t.add_row({r.name, exp::Table::num(r.delivery * 100.0, 2),
               exp::Table::num(r.recovery * 100.0, 1),
               exp::Table::num(r.recovery_p90_ms, 0),
               exp::Table::num(r.egress_per_kb, 1)});
  }
  t.print("cost vs QoS spectrum (same workload, same paths, same seeds)");

  exp::print_claim("Fig2 cost ordering", "coding (alpha*c) < caching (c) < forwarding (2c)",
                   exp::Table::num(coding.egress_per_kb, 1) + " < " +
                       exp::Table::num(caching.egress_per_kb, 1) + " < " +
                       exp::Table::num(forwarding.egress_per_kb, 1) +
                       " DC egress bytes per delivered KB");
  exp::print_claim("Fig2 QoS ordering", "every service beats Internet-only delivery",
                   "internet " + exp::Table::num(internet.delivery * 100.0, 2) +
                       "% vs coding " + exp::Table::num(coding.delivery * 100.0, 2) +
                       "% / caching " + exp::Table::num(caching.delivery * 100.0, 2) +
                       "% / forwarding " + exp::Table::num(forwarding.delivery * 100.0, 2) +
                       "%");
  return 0;
}
