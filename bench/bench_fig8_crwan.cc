// Figure 8 reproduction: the CR-WAN wide-area deployment (45 paths, four
// continents) through the full simulated service stack.
//  (a) CCDF of per-path recovery success
//  (b) loss-episode contribution (Random / Multi / Outage)
//  (c) % increase in recovery vs on-path FEC at 20/40/100% overhead
//  (d) recovery time / RTT, per region pair
//  (e) 2 vs 1 cross-stream coded packets (straggler protection ablation)
//
// The figure run executes through exp::ShardedRunner (one shard per
// (DC1,DC2) path group, JQOS_SIM_THREADS workers), and a trailing threads
// sweep re-runs the 45-path scenario at 1/2/4/max threads to report merged
// throughput and speedup_vs_1t -- the merged results are bit-identical
// across the sweep by the runner's determinism contract, so the sweep
// measures wall-clock only.
//
// Flags: --quick shrinks the run for smoke testing; --json emits the
// headline figure metrics as JSON Lines (see bench_json.h) for CI diffing.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "exp/fec_whatif.h"
#include "exp/planetlab.h"
#include "exp/report.h"
#include "threads_sweep.h"

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");

  exp::PlanetlabConfig config;
  config.num_paths = 45;
  config.duration = quick ? minutes(6) : minutes(40);
  if (quick) {
    config.cbr.on_duration = sec(45);
    config.cbr.mean_off = sec(45);
  }
  if (!json) {
    std::printf("== Figure 8: CR-WAN deployment (%zu paths, %s simulated) ==\n",
                config.num_paths, format_duration(config.duration).c_str());
  }

  const exp::PlanetlabResult result = exp::run_planetlab(config);

  // ---- (a) per-path recovery CCDF ----
  if (!json) exp::print_ccdf("Fig8a per-path recovery success rate (%)", result.per_path_recovery);
  double paths_over_80 = 0;
  Samples loss_rates;
  for (const auto& p : result.paths) {
    if (p.recovery_success > 0.8) ++paths_over_80;
    loss_rates.add(p.loss_rate * 100.0);
  }
  paths_over_80 /= static_cast<double>(result.paths.size());
  if (!json) {
    exp::print_claim("Fig8a overall recovery", "CR-WAN recovers 78% of lost packets",
                     exp::Table::num(result.overall_recovery * 100.0, 1) + "%");
    exp::print_claim("Fig8a paths recovering >80%", "82% of paths",
                     exp::Table::num(paths_over_80 * 100.0, 1) + "%");
    exp::print_claim("Fig8 loss rates", "up to 0.9% loss; 40% of paths > 0.1%",
                     "max " + exp::Table::num(loss_rates.max(), 2) + "%, >0.1% on " +
                         exp::Table::num(100.0 - loss_rates.cdf_at(0.1) * 100.0, 0) +
                         "% of paths");
  }

  // ---- (b) loss-episode mix on >80%-recovery paths ----
  exp::EpisodeMix mix;
  Samples random_frac, multi_frac, outage_frac;
  std::size_t paths_with_outage = 0;
  for (const auto& p : result.paths) {
    if (p.recovery_success <= 0.8) continue;
    random_frac.add(p.episodes.random_fraction() * 100.0);
    multi_frac.add(p.episodes.multi_fraction() * 100.0);
    outage_frac.add(p.episodes.outage_fraction() * 100.0);
    if (p.episodes.outage_episodes > 0) ++paths_with_outage;
  }
  if (!json) {
    exp::print_cdf("Fig8b Random episode loss contribution (%)", random_frac);
    exp::print_cdf("Fig8b Multi-packet episode loss contribution (%)", multi_frac);
    exp::print_cdf("Fig8b Outage episode loss contribution (%)", outage_frac);
    exp::print_claim("Fig8b outages not uncommon", "45% of paths see 1-3s outages",
                     exp::Table::num(100.0 * static_cast<double>(paths_with_outage) /
                                         static_cast<double>(result.paths.size()), 0) +
                         "% of paths saw an outage episode");
  }

  // ---- (c) CR-WAN vs on-path FEC what-if ----
  // Trace replays fan out across the worker pool (deterministic merge).
  std::vector<std::vector<bool>> traces;
  traces.reserve(result.paths.size());
  for (const auto& p : result.paths) traces.push_back(p.trace);
  const auto whatif = exp::fec_whatif_sweep(traces, {{5, 1}, {5, 2}, {5, 5}});
  Samples inc20, inc40, inc100;
  std::size_t fec100_defeated = 0;
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    const double crwan = result.paths[i].recovery_success;
    inc20.add(exp::percent_increase(crwan, whatif[i].rates[0]));
    inc40.add(exp::percent_increase(crwan, whatif[i].rates[1]));
    inc100.add(exp::percent_increase(crwan, whatif[i].rates[2]));
    if (whatif[i].last_level_defeated) ++fec100_defeated;
  }
  if (!json) {
    exp::print_cdf("Fig8c % increase vs FEC 20% overhead", inc20);
    exp::print_cdf("Fig8c % increase vs FEC 40% overhead", inc40);
    exp::print_cdf("Fig8c % increase vs FEC 100% overhead", inc100);
    exp::print_claim("Fig8c paths with episodes FEC-100% cannot recover",
                     "90% of paths had at least one",
                     exp::Table::num(100.0 * static_cast<double>(fec100_defeated) /
                                         static_cast<double>(result.paths.size()), 0) +
                         "%");
    exp::print_claim("Fig8c vs 20% FEC", ">=100% recovery increase on 70% of paths",
                     exp::Table::num(100.0 * (1.0 - inc20.cdf_at(99.99)), 0) +
                         "% of paths see >=100% increase");
  }

  // ---- (d) recovery time / RTT per region ----
  if (!json) {
    exp::print_cdf("Fig8d recovery time / RTT (aggregate)", result.recovery_over_rtt_all);
    for (const auto& [label, samples] : result.recovery_over_rtt_by_region) {
      if (samples.count() < 10) continue;
      exp::print_cdf("Fig8d recovery time / RTT (" + label + ")", samples);
    }
    exp::print_claim("Fig8d fast recovery", "95% of packets recovered within 0.5x RTT",
                     "CDF(0.5) = " +
                         exp::Table::num(result.recovery_over_rtt_all.cdf_at(0.5), 2));
  }

  if (!json) {
    // ---- recovery statistics table ----
    exp::Table stats({"metric", "value"});
    stats.add_row({"nacks received", std::to_string(result.recovery.nacks)});
    stats.add_row({"in-stream serves", std::to_string(result.recovery.in_stream_served)});
    stats.add_row({"cooperative ops", std::to_string(result.recovery.coop_ops)});
    stats.add_row({"cooperative successes", std::to_string(result.recovery.coop_success)});
    stats.add_row({"deadline failures",
                   std::to_string(result.recovery.coop_deadline_failures)});
    stats.add_row({"cross batches encoded", std::to_string(result.encoder.cross_batches)});
    stats.add_row({"in-stream batches encoded", std::to_string(result.encoder.in_batches)});
    stats.add_row({"coded packets sent", std::to_string(result.encoder.coded_sent)});
    stats.add_row({"coding overhead (coded/data)",
                   exp::Table::num(static_cast<double>(result.encoder.coded_sent) /
                                       static_cast<double>(
                                           std::max<std::uint64_t>(1,
                                                                   result.encoder.data_packets)),
                                   3)});
    stats.print("CR-WAN deployment counters");
  }

  // ---- (e) straggler-protection ablation: 2 vs 1 coded packets ----
  exp::PlanetlabConfig ab = config;
  ab.num_paths = quick ? 20 : 45;
  if (!quick) ab.duration = minutes(20);
  const Samples increase = exp::run_straggler_ablation(ab);
  if (!json) {
    exp::print_cdf("Fig8e % increase in recovery, 2 vs 1 cross-coded packets", increase);
    exp::print_claim("Fig8e straggler protection",
                     "60% of paths see >10% improvement with 2 coded packets",
                     exp::Table::num(100.0 * (1.0 - increase.cdf_at(10.0)), 0) +
                         "% of paths see >10% improvement");
  }

  // ---- threads sweep: merged throughput of the 45-path scenario ----
  // Re-runs the deployment at 1/2/4/max worker threads. Results are
  // bit-identical across rows (enforced by sharded_scenario_test); the rows
  // measure wall-clock, merged events/sec, and workload Mpps.
  exp::PlanetlabConfig sweep_config = config;
  sweep_config.duration = quick ? sec(90) : minutes(10);
  std::vector<bench::ThreadsSweepRow> sweep;
  for (unsigned threads : bench::sweep_thread_counts()) {
    sweep_config.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const exp::PlanetlabResult r = exp::run_planetlab(sweep_config);
    bench::ThreadsSweepRow row;
    row.threads = r.threads_used;  // Clamped to the shard count by the runner.
    row.shards = r.shards_used;
    row.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    row.events = r.events_processed;
    for (const auto& p : r.paths) {
      row.packets += static_cast<std::uint64_t>(p.trace.size());
    }
    sweep.push_back(row);
  }
  if (!json) {
    char header[128];
    std::snprintf(header, sizeof(header),
                  "\n== Threads sweep: %zu paths, %s simulated per row ==",
                  sweep_config.num_paths, format_duration(sweep_config.duration).c_str());
    bench::print_threads_sweep(header, sweep);
  }

  if (json) {
    bench::emit_threads_sweep("fig8_crwan", "threads_sweep", sweep);
    bench::JsonRow("fig8_crwan")
        .add("name", "overall")
        .add("paths", static_cast<std::uint64_t>(result.paths.size()))
        .add("overall_recovery", result.overall_recovery)
        .add("paths_over_80pct", paths_over_80)
        .add("max_loss_pct", loss_rates.max())
        .add("outage_path_fraction",
             static_cast<double>(paths_with_outage) /
                 static_cast<double>(result.paths.size()))
        .emit();
    bench::JsonRow("fig8_crwan")
        .add("name", "fec_whatif_median_increase_pct")
        .add("fec20", inc20.median())
        .add("fec40", inc40.median())
        .add("fec100", inc100.median())
        .emit();
    bench::JsonRow("fig8_crwan")
        .add("name", "recovery_over_rtt")
        .add("cdf_05", result.recovery_over_rtt_all.cdf_at(0.5))
        .emit();
    bench::JsonRow("fig8_crwan")
        .add("name", "counters")
        .add("nacks", result.recovery.nacks)
        .add("coop_ops", result.recovery.coop_ops)
        .add("coop_success", result.recovery.coop_success)
        .add("coded_sent", result.encoder.coded_sent)
        .add("data_packets", result.encoder.data_packets)
        .emit();
    bench::JsonRow("fig8_crwan")
        .add("name", "straggler_ablation")
        .add("paths_over_10pct_gain", 1.0 - increase.cdf_at(10.0))
        .emit();
  }
  return 0;
}
