// Fault-injection bench: graceful degradation of the overlay under DC
// crashes, direct-path link failures, brownouts, and flapping links.
//
// Each scenario drives the churn workload (src/workload) through a
// declarative netsim::FaultPlan and reports one JSON Lines row (--json):
// sessions completed/succeeded, fault-layer counters, time-to-detect and
// time-to-re-engage for overlay death, and completion-time quantiles split
// by whether a session's lifetime overlapped a fault window.
//
// The headline pair is dc2_crash_failover vs dc2_crash_nofailover: with
// every recovery DC crashed for the middle third of the run, path-switched
// sessions survive only by detecting overlay death and failing over to the
// direct Internet path. CI gates on the failover row keeping success_pct
// high while the nofailover row visibly degrades, on fault_drops being
// accounted, and on the sessions_per_sec throughput field.
//
// --quick shrinks the workload for the CI smoke lane.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "bench_json.h"
#include "exp/report.h"
#include "geo/path_dataset.h"
#include "workload/churn.h"

namespace {

using namespace jqos;

struct Spec {
  const char* mode;
  std::size_t num_pairs;
  double sessions_per_sec;  // Aggregate arrival rate.
  SimDuration duration;     // Arrival window; faults live inside it.
};

workload::ChurnConfig base_config(const Spec& spec) {
  workload::ChurnConfig cfg;
  cfg.num_pairs = spec.num_pairs;
  cfg.duration = spec.duration;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.sessions_per_sec = spec.sessions_per_sec;
  cfg.mix = workload::AppMix::kWebTransfer;
  cfg.payload_bytes = 512;
  cfg.packets_per_second = 50.0;
  cfg.max_session_packets = 200;
  cfg.scenario.seed = 7;
  return cfg;
}

// The distinct recovery-DC (DC2) site names the churn geography will use:
// replicates run_churn's path derivation, which is a pure function of the
// scenario seed.
std::set<std::string> dc2_sites(const workload::ChurnConfig& cfg) {
  Rng geo_rng(Rng::derive(cfg.scenario.seed, "churn-paths"));
  auto paths = geo::planetlab_paths(cfg.num_pairs, geo_rng);
  std::set<std::string> sites;
  for (const auto& p : paths) sites.insert(p.dc2.name);
  return sites;
}

double first_down_ms(const workload::ChurnResult& r, SimTime from) {
  for (const auto& ev : r.failover_events) {
    if (!ev.up && ev.at >= from) return to_ms(ev.at - from);
  }
  return std::nan("");
}

double first_up_ms(const workload::ChurnResult& r, SimTime from) {
  for (const auto& ev : r.failover_events) {
    if (ev.up && ev.at >= from) return to_ms(ev.at - from);
  }
  return std::nan("");
}

void run_case(const char* scenario, const Spec& spec, const workload::ChurnConfig& cfg,
              SimTime crash_at, SimTime restart_at, bool json) {
  const auto t0 = std::chrono::steady_clock::now();
  workload::ChurnResult r = workload::run_churn(cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const double sessions_per_sec =
      wall_s > 0.0 ? static_cast<double>(r.totals.sessions_completed) / wall_s : 0.0;
  const double success_pct =
      r.totals.sessions_completed > 0
          ? 100.0 * static_cast<double>(r.totals.sessions_succeeded) /
                static_cast<double>(r.totals.sessions_completed)
          : 0.0;
  const double detect_ms = crash_at > 0 ? first_down_ms(r, crash_at) : std::nan("");
  const double reengage_ms = restart_at > 0 ? first_up_ms(r, restart_at) : std::nan("");

  char fp[32];
  std::snprintf(fp, sizeof(fp), "%016" PRIx64, r.fingerprint());
  if (json) {
    bench::JsonRow("faults")
        .add("scenario", scenario)
        .add("mode", spec.mode)
        .add("sessions", r.totals.sessions_completed)
        .add("succeeded", r.totals.sessions_succeeded)
        .add("success_pct", success_pct)
        .add("packets", r.totals.packets_sent)
        .add("sessions_per_sec", sessions_per_sec)
        .add("wall_s", wall_s)
        .add("fault_drops", r.faults.link_fault_drops)
        .add("dc_fault_dropped", r.faults.dc_fault_dropped)
        .add("dc_crashes", r.faults.total_dc_crashes())
        .add("failovers", r.faults.failovers)
        .add("reengages", r.faults.reengages)
        .add("probes_sent", r.faults.probes_sent)
        .add("failover_detect_ms", detect_ms)
        .add("reengage_ms", reengage_ms)
        .add("p50_completion_in_fault_ms", r.completion_in_fault_ms.quantile(0.5))
        .add("p99_completion_in_fault_ms", r.completion_in_fault_ms.quantile(0.99))
        .add("p50_completion_clear_ms", r.completion_clear_ms.quantile(0.5))
        .add("p99_completion_clear_ms", r.completion_clear_ms.quantile(0.99))
        .add("leaked_flows", r.totals.leaked_flows)
        .add("events", r.events)
        .add("shards", static_cast<std::uint64_t>(r.shards_used))
        .add("threads", static_cast<std::uint64_t>(r.threads_used))
        .add("fingerprint", fp)
        .emit();
  } else {
    std::printf(
        "faults %-22s sessions=%" PRIu64 " succeeded=%" PRIu64
        " (%.1f%%, %.0f/s wall)\n"
        "  fault_drops=%" PRIu64 " dc_dropped=%" PRIu64 " crashes=%" PRIu64
        " failovers=%" PRIu64 " reengages=%" PRIu64 " detect=%.1fms reengage=%.1fms\n"
        "  completion p50 in-fault/clear = %.1f / %.1f ms  leaked=%" PRIu64 " fp=%s\n",
        scenario, r.totals.sessions_completed, r.totals.sessions_succeeded, success_pct,
        sessions_per_sec, r.faults.link_fault_drops, r.faults.dc_fault_dropped,
        r.faults.total_dc_crashes(), r.faults.failovers, r.faults.reengages, detect_ms,
        reengage_ms, r.completion_in_fault_ms.quantile(0.5),
        r.completion_clear_ms.quantile(0.5), r.totals.leaked_flows, fp);
    exp::print_fault_summary(scenario, r.faults);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::want_json(argc, argv);
  const bool quick = bench::want_flag(argc, argv, "--quick");
  const Spec spec =
      quick ? Spec{"quick", 6, 120.0, sec(30)} : Spec{"full", 24, 600.0, sec(90)};

  const SimTime crash_at = spec.duration / 3;
  const SimTime restart_at = 2 * spec.duration / 3;
  const SimDuration crash_len = restart_at - crash_at;

  // --- dc2_crash: every recovery DC down for the middle third ---
  // Path switching (kForward, no direct copies): sessions survive the crash
  // window only via overlay-death detection + direct-path failover.
  {
    workload::ChurnConfig cfg = base_config(spec);
    cfg.scenario.service = ServiceType::kForward;
    cfg.scenario.send_direct = false;
    cfg.scenario.failover.enabled = true;
    netsim::FaultPlan plan(cfg.scenario.seed);
    for (const std::string& site : dc2_sites(cfg)) {
      plan.node_crash("dc:" + site, crash_at, crash_len);
    }
    cfg.scenario.faults = plan;
    run_case("dc2_crash_failover", spec, cfg, crash_at, restart_at, json);

    cfg.scenario.failover.enabled = false;
    run_case("dc2_crash_nofailover", spec, cfg, crash_at, restart_at, json);
  }

  // --- dc2_crash_code: NACK-silence detection with the coding service ---
  // Direct copies keep flowing; the crash kills recovery, so the win is
  // suppressed NACK/cloud traffic while down plus re-engagement after
  // restart (counted via failovers/reengages).
  {
    workload::ChurnConfig cfg = base_config(spec);
    cfg.scenario.service = ServiceType::kCode;
    cfg.scenario.failover.enabled = true;
    netsim::FaultPlan plan(cfg.scenario.seed);
    for (const std::string& site : dc2_sites(cfg)) {
      plan.node_crash("dc:" + site, crash_at, crash_len);
    }
    cfg.scenario.faults = plan;
    run_case("dc2_crash_code", spec, cfg, crash_at, restart_at, json);
  }

  // --- direct_faults: direct-path link down + brownout + flaps ---
  // The overlay carries sessions through direct-path failures: link 0 hard
  // down, link 1 browned out, link 2 flapping on a seeded outage process.
  {
    workload::ChurnConfig cfg = base_config(spec);
    cfg.scenario.service = ServiceType::kCode;
    netsim::FaultPlan plan(cfg.scenario.seed);
    plan.link_down("direct:0", crash_at, crash_len);
    if (cfg.num_pairs > 1) {
      plan.link_brownout("direct:1", crash_at, crash_len,
                         netsim::BrownoutProfile{0.10, msec(40)});
    }
    if (cfg.num_pairs > 2) {
      netsim::OutageParams flaps;
      flaps.mean_interval = sec(8);
      flaps.min_len = msec(500);
      flaps.max_len = sec(2);
      plan.link_flaps("direct:2", flaps, spec.duration);
    }
    cfg.scenario.faults = plan;
    run_case("direct_faults", spec, cfg, 0, 0, json);
  }

  return 0;
}
