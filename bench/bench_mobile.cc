// Section 6.5 reproduction: mobile-network feasibility of CR-WAN --
// duplication bandwidth vs LTE uplinks, battery overhead, cellular RTTs to
// the cloud, and recovery feasibility.
// Flags: --json emits the feasibility checks as one JSON Lines row.
#include <cstdio>

#include "app/mobile.h"
#include "bench_json.h"
#include "exp/report.h"

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  if (!json) std::printf("== Section 6.5: J-QoS on mobile networks ==\n");

  app::MobileParams params;
  Rng rng(2020);
  const app::MobileFeasibility f = app::evaluate_mobile(params, rng);

  const Samples rtts = app::mobile_rtt_samples(params, rng, 1000);
  if (json) {
    bench::JsonRow("mobile")
        .add("name", "feasibility")
        .add("dup_bitrate_mbps", f.dup_bitrate_mbps)
        .add("fits_typical_uplink", static_cast<std::int64_t>(f.dup_fits_typical_uplink))
        .add("fits_good_uplink", static_cast<std::int64_t>(f.dup_fits_good_uplink))
        .add("battery_overhead_pct", f.battery_overhead_percent)
        .add("rtt_p50_ms", f.rtt_p50_ms)
        .add("rtt_p90_ms", f.rtt_p90_ms)
        .add("recovery_latency_ms", f.recovery_latency_ms)
        .add("recovery_feasible_interactive",
             static_cast<std::int64_t>(f.recovery_feasible_interactive))
        .emit();
    return 0;
  }
  exp::print_cdf("cellular RTT to cloud providers (ms)", rtts);

  exp::Table t({"check", "paper", "measured/model"});
  t.add_row({"duplicated call bitrate", "1.5 -> 3.0 Mbps",
             exp::Table::num(f.dup_bitrate_mbps, 1) + " Mbps"});
  t.add_row({"fits 2 Mbps (floor) uplink", "no - could reach capacity",
             f.dup_fits_typical_uplink ? "yes" : "no"});
  t.add_row({"fits 5 Mbps (good) uplink", "yes - worked on the LTE testbed",
             f.dup_fits_good_uplink ? "yes" : "no"});
  t.add_row({"battery overhead", "~0 (20 mAh both cases)",
             exp::Table::num(f.battery_overhead_percent, 1) + "%"});
  t.add_row({"RTT median", "50-60 ms", exp::Table::num(f.rtt_p50_ms, 0) + " ms"});
  t.add_row({"RTT p90", "~100 ms", exp::Table::num(f.rtt_p90_ms, 0) + " ms"});
  t.add_row({"cooperative recovery latency", "feasible if delay consistent",
             exp::Table::num(f.recovery_latency_ms, 0) + " ms (~2 cellular RTTs)"});
  t.add_row({"recovery feasible for interactive apps", "yes (with adaptation)",
             f.recovery_feasible_interactive ? "yes" : "no"});
  t.print("Section 6.5 mobile feasibility");

  exp::print_claim("Sec6.5 duplication fits good uplinks",
                   "3.0 Mbps within ~5 Mbps LTE uplink",
                   f.dup_fits_good_uplink ? "fits" : "does not fit");
  exp::print_claim("Sec6.5 battery", "negligible impact (~20 mAh both)",
                   exp::Table::num(f.battery_overhead_percent, 1) + "% overhead");
  exp::print_claim("Sec6.5 cellular RTTs", "median 50-60 ms; 50-90% band 50-100 ms",
                   "p50 = " + exp::Table::num(f.rtt_p50_ms, 0) + " ms, p90 = " +
                       exp::Table::num(f.rtt_p90_ms, 0) + " ms");
  return 0;
}
