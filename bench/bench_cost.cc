// Section 6.6 deployment-cost table: forwarding vs caching vs coding for
// 150 concurrent Skype calls through a 2-DC overlay, from the cloud cost
// model (ingress free, egress charged, compute per thread-hour).
// Flags: --json emits the cost rows as JSON Lines for CI diffing.
#include <cstdio>

#include "bench_json.h"
#include "exp/report.h"
#include "overlay/cost_model.h"

int main(int argc, char** argv) {
  using namespace jqos;
  const bool json = bench::want_json(argc, argv);
  if (!json) std::printf("== Section 6.6: deployment cost (150 Skype calls, 2-DC overlay) ==\n");

  const overlay::CostModel model;
  const overlay::SkypeLoad load;
  const double gb_per_hour = load.gb_per_user_hour * load.calls_per_thread;

  exp::Table t({"service", "inter-DC GB/h", "bandwidth $/h", "compute $/h", "total $/h",
                "vs forwarding"});
  const double egress = model.pricing().egress_usd_per_gb;
  const double compute = model.pricing().compute_usd_per_thread_hour;

  const double fwd_bw = 2.0 * gb_per_hour * egress;
  const double cache_bw = (gb_per_hour + gb_per_hour * 0.01) * egress;  // ~1% pulls.
  const double code_rate = 1.0 / 16.0;
  const double code_bw = 2.0 * gb_per_hour * code_rate * egress;

  if (json) {
    const auto row = [&](const char* service, double gbph, double bw) {
      bench::JsonRow("cost")
          .add("name", "service_cost")
          .add("service", service)
          .add("inter_dc_gb_per_hour", gbph)
          .add("bandwidth_usd_per_hour", bw)
          .add("compute_usd_per_hour", compute)
          .add("total_usd_per_hour", bw + compute)
          .add("x_cheaper_than_fwd", bw > 0 ? fwd_bw / bw : 0.0)
          .emit();
    };
    row("forwarding", gb_per_hour, fwd_bw);
    row("caching", gb_per_hour, cache_bw);
    row("coding_r16", gb_per_hour * code_rate, code_bw);
    for (double r : {1.0 / 2.0, 1.0 / 4.0, 1.0 / 8.0, 1.0 / 16.0, 1.0 / 32.0}) {
      const double bw = 2.0 * gb_per_hour * r * egress;
      bench::JsonRow("cost")
          .add("name", "rate_sweep")
          .add("coding_rate", r)
          .add("bandwidth_usd_per_hour", bw)
          .add("x_cheaper_than_fwd", fwd_bw / bw)
          .emit();
    }
    return 0;
  }

  t.add_row({"forwarding", exp::Table::num(gb_per_hour, 1), exp::Table::num(fwd_bw),
             exp::Table::num(compute), exp::Table::num(fwd_bw + compute), "1.0x"});
  t.add_row({"caching", exp::Table::num(gb_per_hour, 1), exp::Table::num(cache_bw),
             exp::Table::num(compute), exp::Table::num(cache_bw + compute),
             exp::Table::num(fwd_bw / cache_bw, 1) + "x cheaper (bw)"});
  t.add_row({"coding r=1/16", exp::Table::num(gb_per_hour * code_rate, 1),
             exp::Table::num(code_bw), exp::Table::num(compute),
             exp::Table::num(code_bw + compute),
             exp::Table::num(fwd_bw / code_bw, 1) + "x cheaper (bw)"});
  t.print("Section 6.6 hourly cost estimate");

  exp::print_claim("Sec6.6 forwarding bandwidth cost", "$17.60/hour",
                   "$" + exp::Table::num(fwd_bw) + "/hour");
  exp::print_claim("Sec6.6 compute cost", "$0.13/hour (one thread)",
                   "$" + exp::Table::num(compute) + "/hour");
  exp::print_claim("Sec6.6 coding bandwidth cost", "$1.10/hour (16x less)",
                   "$" + exp::Table::num(code_bw) + "/hour (" +
                       exp::Table::num(fwd_bw / code_bw, 1) + "x less)");

  // Sensitivity sweep: cost vs coding rate (the alpha*c spectrum of Fig 2).
  exp::Table sweep({"coding rate r", "inter-DC GB/h", "bandwidth $/h", "x cheaper than fwd"});
  for (double r : {1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0, 1.0 / 8.0, 1.0 / 16.0, 1.0 / 32.0}) {
    const double bw = 2.0 * gb_per_hour * r * egress;
    sweep.add_row({exp::Table::num(r, 4), exp::Table::num(gb_per_hour * r, 1),
                   exp::Table::num(bw), exp::Table::num(fwd_bw / bw, 1) + "x"});
  }
  sweep.print("coding-rate cost sensitivity");
  return 0;
}
